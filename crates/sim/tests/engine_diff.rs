//! Differential tests: the timing-wheel event queue against the
//! `BinaryHeap` oracle.
//!
//! The wheel's ordering contract — pops in ascending `(time, seq)` order,
//! FIFO among ties — is what makes every simulation's output bit-identical
//! whichever queue runs it. These tests drive both queues through
//! randomized schedules that cross every structural boundary (in-bucket
//! ties, level-0 page turns, the level-1 horizon, the overflow heap, and
//! interleaved push/pop with clamped re-pushes) and assert identical pop
//! streams.

use proptest::prelude::*;
use zygos_sim::engine::{Engine, EventQueue, HeapQueue, Model, Scheduler, WheelQueue};
use zygos_sim::time::{SimDuration, SimTime};

/// Drains both queues after an identical push sequence, asserting equal
/// `(time, seq, payload)` streams.
fn assert_same_drain(pushes: &[(u64, u32)]) {
    let mut wheel = WheelQueue::<u32>::default();
    let mut heap = HeapQueue::<u32>::default();
    for (seq, &(at, tag)) in pushes.iter().enumerate() {
        wheel.push(SimTime::from_nanos(at), seq as u64, tag);
        heap.push(SimTime::from_nanos(at), seq as u64, tag);
    }
    loop {
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(a, b, "wheel and heap diverged");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(wheel.len(), 0);
}

proptest! {
    /// Pure push-then-drain over times spanning all four structures.
    #[test]
    fn drain_matches_heap(
        pushes in proptest::collection::vec((0u64..1u64 << 45, 0u32..1000), 1..300)
    ) {
        assert_same_drain(&pushes);
    }

    /// Times concentrated near page boundaries: multiples of the 65.5µs
    /// page stride, off by -1/0/+1, with heavy tie probability.
    #[test]
    fn page_boundaries_match_heap(
        pushes in proptest::collection::vec((0u64..64, 0u64..3, 0u32..100), 1..200)
    ) {
        let spread: Vec<(u64, u32)> = pushes
            .iter()
            .map(|&(page, off, tag)| ((page << 16).saturating_add(off).saturating_sub(1), tag))
            .collect();
        assert_same_drain(&spread);
    }

    /// Interleaved push/pop: pops raise the clamp floor, so later pushes
    /// exercise the wheel's cursor-rewind and same-instant append paths.
    #[test]
    fn interleaved_ops_match_heap(
        ops in proptest::collection::vec((0u64..1u64 << 34, 0u32..2), 1..300)
    ) {
        let mut wheel = WheelQueue::<u32>::default();
        let mut heap = HeapQueue::<u32>::default();
        let mut seq = 0u64;
        let mut floor = 0u64; // Engine clamp: pushes never precede the last pop.
        for &(at, is_pop) in &ops {
            if is_pop == 1 {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                if let Some((t, _, _)) = a {
                    floor = t.as_nanos();
                }
            } else {
                let t = SimTime::from_nanos(at.max(floor));
                wheel.push(t, seq, (seq % 997) as u32);
                heap.push(t, seq, (seq % 997) as u32);
                seq += 1;
                prop_assert_eq!(wheel.peek_at(), heap.peek_at());
            }
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

/// A model whose handler chains follow-ups at pseudo-random offsets —
/// covering the engine-level path (scratch drain, seq assignment, stop).
struct Chaos {
    trace: Vec<(u64, u32)>,
    budget: u32,
}

enum Ev {
    Step(u32),
}

impl Model for Chaos {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, Ev::Step(x): Ev, sched: &mut Scheduler<Ev>) {
        self.trace.push((now.as_nanos(), x));
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        // Deterministic pseudo-random fan-out: 1–3 follow-ups at mixed
        // horizons (same instant, in-page, next page, far future).
        let h = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for k in 0..(1 + (h % 3)) {
            let delay = match (h >> (8 * k)) % 5 {
                0 => 0,
                1 => (h >> 11) % 4_096,
                2 => (h >> 13) % 70_000,
                3 => (h >> 17) % (1 << 28),
                _ => (h >> 19) % (1 << 35),
            };
            sched.after(
                SimDuration::from_nanos(delay),
                Ev::Step(x.wrapping_mul(31).wrapping_add(k as u32 + 1)),
            );
        }
    }
}

#[test]
fn full_engine_trace_is_identical_on_both_queues() {
    fn run_on<Q: EventQueue<Ev>>() -> Vec<(u64, u32)> {
        let mut e = Engine::<Chaos, Q>::with_queue(Chaos {
            trace: Vec::new(),
            budget: 3_000,
        });
        for i in 0..16 {
            e.schedule(SimTime::from_nanos(i * 1_000), Ev::Step(i as u32 + 1));
        }
        e.run();
        e.into_model().trace
    }
    let wheel = run_on::<WheelQueue<Ev>>();
    let heap = run_on::<HeapQueue<Ev>>();
    assert_eq!(wheel.len(), heap.len());
    assert_eq!(wheel, heap);
}
