//! OCC transactions with Silo's three-phase commit (Silo §4.2).
//!
//! During execution a transaction tracks:
//!
//! * a **read set** — every record read, with the TID observed;
//! * a **write set** — inserts, updates and deletes, buffered locally
//!   (reads see the transaction's own writes);
//! * a **scan set** — for every range scanned (and every lookup miss), the
//!   shard and structure version observed, for phantom detection.
//!
//! Commit:
//!
//! 1. **Lock** every written record, in canonical (address) order — the
//!    global order makes deadlock impossible.
//! 2. **Validate** the read set (TID unchanged, not locked by others) and
//!    the scan set (shard versions unchanged except for our own inserts).
//! 3. **Install** the writes with a fresh TID in the current epoch and
//!    release the locks.

use std::collections::HashMap;
use std::sync::Arc;

use crate::db::Database;
use crate::record::Record;
use crate::table::Table;
use crate::tid::TidWord;

/// Why a commit failed. Callers normally retry the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitError {
    /// A read-set record changed or was locked by a concurrent writer.
    ReadValidation,
    /// A scanned shard changed structurally (possible phantom).
    PhantomValidation,
    /// An update or delete targeted a key that does not exist.
    MissingKey,
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::ReadValidation => write!(f, "read validation failed"),
            CommitError::PhantomValidation => write!(f, "phantom detected in scanned range"),
            CommitError::MissingKey => write!(f, "update/delete of missing key"),
        }
    }
}

impl std::error::Error for CommitError {}

enum WriteKind {
    Insert,
    Update,
    Delete,
}

struct WriteOp {
    table: Table,
    key: Vec<u8>,
    value: Option<Vec<u8>>,
    kind: WriteKind,
}

/// Rows returned by [`Transaction::scan`]: `(key, value)` pairs in scan
/// order.
pub type ScanRows = Vec<(Vec<u8>, Vec<u8>)>;

/// An in-flight transaction.
pub struct Transaction<'db> {
    db: &'db Database,
    reads: Vec<(Arc<Record>, TidWord)>,
    writes: Vec<WriteOp>,
    /// (table id, shard) → version observed at first scan.
    scans: HashMap<(usize, usize), (Table, u64)>,
    /// Read-your-writes buffer: (table id, key) → value (None = deleted).
    local: HashMap<(usize, Vec<u8>), Option<Vec<u8>>>,
    /// Retries/aborts observed so far (telemetry for the harness).
    aborted: bool,
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(db: &'db Database) -> Self {
        Transaction {
            db,
            reads: Vec::new(),
            writes: Vec::new(),
            scans: HashMap::new(),
            local: HashMap::new(),
            aborted: false,
        }
    }

    /// Reads `key` from `table`.
    ///
    /// Returns `Ok(None)` if the key does not exist (the miss is recorded
    /// for phantom validation). Sees the transaction's own writes.
    pub fn read(&mut self, table: &Table, key: &[u8]) -> Result<Option<Vec<u8>>, CommitError> {
        if let Some(v) = self.local.get(&(table.id(), key.to_vec())) {
            return Ok(v.clone());
        }
        match table.get(key) {
            Some(rec) => {
                let (tid, data) = rec.read();
                self.reads.push((rec, tid));
                Ok(data)
            }
            None => {
                // Key miss: a later insert of this key is a phantom; track
                // the shard version.
                self.note_scan(table, table.shard_of(key));
                Ok(None)
            }
        }
    }

    /// Scans `[start, end]` (ascending unless `rev`), up to `limit` present
    /// rows, with read-set and phantom tracking. Sees own writes for keys
    /// in range.
    pub fn scan(
        &mut self,
        table: &Table,
        start: &[u8],
        end: &[u8],
        limit: usize,
        rev: bool,
    ) -> Result<ScanRows, CommitError> {
        let (hits, shard, version) = table.scan(start, end, limit.saturating_mul(2).max(16), rev);
        self.note_scan_version(table, shard, version);
        let mut out = Vec::new();
        for (key, rec) in hits {
            if out.len() >= limit {
                break;
            }
            if let Some(v) = self.local.get(&(table.id(), key.clone())) {
                // Own write shadows the stored version.
                if let Some(v) = v {
                    out.push((key, v.clone()));
                }
                continue;
            }
            let (tid, data) = rec.read();
            self.reads.push((rec, tid));
            if let Some(data) = data {
                out.push((key, data));
            }
        }
        // Own inserts within the range that the index does not yet hold.
        let mut own: Vec<(Vec<u8>, Vec<u8>)> = self
            .local
            .iter()
            .filter(|((tid_, k), v)| {
                *tid_ == table.id()
                    && v.is_some()
                    && k.as_slice() >= start
                    && k.as_slice() <= end
                    && !out.iter().any(|(ok, _)| ok == k)
            })
            .map(|((_, k), v)| (k.clone(), v.clone().expect("filtered Some")))
            .collect();
        if !own.is_empty() {
            out.append(&mut own);
            if rev {
                out.sort_by(|a, b| b.0.cmp(&a.0));
            } else {
                out.sort_by(|a, b| a.0.cmp(&b.0));
            }
            out.truncate(limit);
        }
        Ok(out)
    }

    fn note_scan(&mut self, table: &Table, shard: usize) {
        let version = table.shard_version(shard);
        self.note_scan_version(table, shard, version);
    }

    fn note_scan_version(&mut self, table: &Table, shard: usize, version: u64) {
        self.scans
            .entry((table.id(), shard))
            .or_insert_with(|| (table.clone(), version));
    }

    /// Buffers an insert.
    pub fn insert(&mut self, table: &Table, key: Vec<u8>, value: Vec<u8>) {
        self.local
            .insert((table.id(), key.clone()), Some(value.clone()));
        self.writes.push(WriteOp {
            table: table.clone(),
            key,
            value: Some(value),
            kind: WriteKind::Insert,
        });
    }

    /// Buffers an update of an existing key.
    pub fn update(&mut self, table: &Table, key: Vec<u8>, value: Vec<u8>) {
        self.local
            .insert((table.id(), key.clone()), Some(value.clone()));
        self.writes.push(WriteOp {
            table: table.clone(),
            key,
            value: Some(value),
            kind: WriteKind::Update,
        });
    }

    /// Buffers a delete of an existing key.
    pub fn delete(&mut self, table: &Table, key: Vec<u8>) {
        self.local.insert((table.id(), key.clone()), None);
        self.writes.push(WriteOp {
            table: table.clone(),
            key,
            value: None,
            kind: WriteKind::Delete,
        });
    }

    /// True if this transaction performed no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Attempts to commit; on error the transaction rolled back (no writes
    /// are visible) and the caller may retry with a fresh transaction.
    pub fn commit(mut self) -> Result<TidWord, CommitError> {
        // Read-only transactions validate reads but skip locking entirely
        // (Silo's read-only fast path).
        if self.writes.is_empty() {
            for (rec, tid) in &self.reads {
                let cur = rec.tid();
                if cur.commit_id() != tid.commit_id() || cur.is_locked() {
                    return Err(CommitError::ReadValidation);
                }
            }
            // Scan validation for read-only txns: versions must be intact.
            for ((_, shard), (table, version)) in &self.scans {
                if table.shard_version(*shard) != *version {
                    return Err(CommitError::PhantomValidation);
                }
            }
            return Ok(TidWord::new(self.db.epochs().current(), 0));
        }

        // Merge repeated writes to one key: the *first* op decides whether
        // this is an insert (a later update of an own insert is still an
        // insert); the *last* op's value wins.
        struct Merged {
            table: Table,
            key: Vec<u8>,
            insert: bool,
            value: Option<Vec<u8>>,
        }
        let mut merged: Vec<Merged> = Vec::with_capacity(self.writes.len());
        let mut index: HashMap<(usize, Vec<u8>), usize> = HashMap::new();
        for w in &self.writes {
            match index.get(&(w.table.id(), w.key.clone())) {
                Some(&i) => merged[i].value = w.value.clone(),
                None => {
                    index.insert((w.table.id(), w.key.clone()), merged.len());
                    merged.push(Merged {
                        table: w.table.clone(),
                        key: w.key.clone(),
                        insert: matches!(w.kind, WriteKind::Insert),
                        value: w.value.clone(),
                    });
                }
            }
        }

        // Resolve write targets to records; count our own structural
        // inserts per shard so scan validation can discount them.
        let mut own_bumps: HashMap<(usize, usize), u64> = HashMap::new();
        let mut resolved: Vec<(Arc<Record>, &Merged)> = Vec::with_capacity(merged.len());
        for w in &merged {
            let rec = if w.insert {
                let (rec, created) = w.table.get_or_insert_absent(&w.key);
                if created {
                    *own_bumps
                        .entry((w.table.id(), w.table.shard_of(&w.key)))
                        .or_insert(0) += 1;
                }
                rec
            } else {
                match w.table.get(&w.key) {
                    Some(rec) => rec,
                    None => {
                        self.aborted = true;
                        return Err(CommitError::MissingKey);
                    }
                }
            };
            resolved.push((rec, w));
        }

        // Phase 1: lock the write set in canonical (address) order.
        resolved.sort_by_key(|(rec, _)| Arc::as_ptr(rec) as usize);
        let mut locked: Vec<&Arc<Record>> = Vec::with_capacity(resolved.len());
        for (rec, _) in &resolved {
            rec.lock();
            locked.push(rec);
        }
        let unlock_all = |locked: &[&Arc<Record>]| {
            for rec in locked {
                rec.unlock();
            }
        };

        // Phase 2a: validate the read set.
        let in_write_set = |rec: &Arc<Record>| resolved.iter().any(|(w, _)| Arc::ptr_eq(w, rec));
        let mut max_seq = 0u64;
        for (rec, tid) in &self.reads {
            let cur = rec.tid();
            if cur.commit_id() != tid.commit_id() {
                unlock_all(&locked);
                return Err(CommitError::ReadValidation);
            }
            if cur.is_locked() && !in_write_set(rec) {
                unlock_all(&locked);
                return Err(CommitError::ReadValidation);
            }
            max_seq = max_seq.max(tid.seq());
        }
        // Phase 2b: validate scan sets, discounting our own inserts.
        for ((tid_, shard), (table, version)) in &self.scans {
            let bump = own_bumps.get(&(*tid_, *shard)).copied().unwrap_or(0);
            if table.shard_version(*shard) != *version + bump {
                unlock_all(&locked);
                return Err(CommitError::PhantomValidation);
            }
        }

        // Phase 3: install with a TID greater than everything observed, in
        // the current epoch.
        for (rec, _) in &resolved {
            max_seq = max_seq.max(rec.tid().seq());
        }
        let epoch = self.db.epochs().current();
        let new_tid = TidWord::new(epoch, (max_seq + 1) & ((1 << 32) - 1));
        let gc_on = self.db.epochs().gc_enabled();
        for (rec, w) in &resolved {
            rec.install(new_tid, w.value.clone());
            if gc_on && w.value.is_none() {
                // Deleted records reclaim once the epoch quiesces.
                self.db.gc().note_absent(&w.table, w.key.clone(), epoch);
            }
        }
        Ok(new_tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;

    fn db_with_table() -> (Database, Table) {
        let db = Database::new();
        let t = db.create_table("t", 2);
        (db, t)
    }

    fn seed(db: &Database, t: &Table, key: &[u8], val: &[u8]) {
        let mut txn = db.begin();
        txn.insert(t, key.to_vec(), val.to_vec());
        txn.commit().unwrap();
    }

    #[test]
    fn insert_then_read_back() {
        let (db, t) = db_with_table();
        seed(&db, &t, b"aa-k", b"v1");
        let mut txn = db.begin();
        assert_eq!(txn.read(&t, b"aa-k").unwrap(), Some(b"v1".to_vec()));
        txn.commit().unwrap();
    }

    #[test]
    fn read_your_own_writes() {
        let (db, t) = db_with_table();
        let mut txn = db.begin();
        txn.insert(&t, b"aa-x".to_vec(), b"mine".to_vec());
        assert_eq!(txn.read(&t, b"aa-x").unwrap(), Some(b"mine".to_vec()));
        txn.delete(&t, b"aa-x".to_vec());
        assert_eq!(txn.read(&t, b"aa-x").unwrap(), None);
    }

    #[test]
    fn update_of_missing_key_fails() {
        let (db, t) = db_with_table();
        let mut txn = db.begin();
        txn.update(&t, b"aa-miss".to_vec(), b"v".to_vec());
        assert_eq!(txn.commit(), Err(CommitError::MissingKey));
    }

    #[test]
    fn write_write_conflict_aborts_one() {
        let (db, t) = db_with_table();
        seed(&db, &t, b"aa-k", b"0");
        // T1 reads then T2 commits a write; T1's read validation fails.
        let mut t1 = db.begin();
        let _ = t1.read(&t, b"aa-k").unwrap();
        let mut t2 = db.begin();
        t2.update(&t, b"aa-k".to_vec(), b"2".to_vec());
        t2.commit().unwrap();
        t1.update(&t, b"aa-k".to_vec(), b"1".to_vec());
        assert_eq!(t1.commit(), Err(CommitError::ReadValidation));
        // The store holds T2's value.
        let mut check = db.begin();
        assert_eq!(check.read(&t, b"aa-k").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn blind_writes_do_not_conflict_with_stale_reads() {
        let (db, t) = db_with_table();
        seed(&db, &t, b"aa-k", b"0");
        // A pure (blind) write commits regardless of other readers.
        let mut w = db.begin();
        w.update(&t, b"aa-k".to_vec(), b"9".to_vec());
        assert!(w.commit().is_ok());
    }

    #[test]
    fn phantom_detected_on_miss_then_insert() {
        let (db, t) = db_with_table();
        let mut t1 = db.begin();
        assert_eq!(t1.read(&t, b"aa-ghost").unwrap(), None);
        // T2 inserts the key T1 decided was absent.
        let mut t2 = db.begin();
        t2.insert(&t, b"aa-ghost".to_vec(), b"boo".to_vec());
        t2.commit().unwrap();
        // T1 writes something else based on the miss — must abort.
        t1.insert(&t, b"aa-other".to_vec(), b"v".to_vec());
        let r = t1.commit();
        assert!(
            matches!(r, Err(CommitError::PhantomValidation)) || r.is_err(),
            "phantom must abort: {r:?}"
        );
    }

    #[test]
    fn scan_sees_committed_rows_in_order() {
        let (db, t) = db_with_table();
        for i in 0..5u8 {
            seed(&db, &t, &[b'a', b'a', b'a', b'a', i], &[i]);
        }
        let mut txn = db.begin();
        let rows = txn
            .scan(
                &t,
                &[b'a', b'a', b'a', b'a', 0],
                &[b'a', b'a', b'a', b'a', 9],
                10,
                false,
            )
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn scan_includes_own_inserts() {
        let (db, t) = db_with_table();
        seed(&db, &t, b"aaaa2", b"x");
        let mut txn = db.begin();
        txn.insert(&t, b"aaaa1".to_vec(), b"own".to_vec());
        let rows = txn.scan(&t, b"aaaa0", b"aaaa9", 10, false).unwrap();
        let keys: Vec<&[u8]> = rows.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"aaaa1".as_slice(), b"aaaa2".as_slice()]);
    }

    #[test]
    fn deleted_rows_disappear() {
        let (db, t) = db_with_table();
        seed(&db, &t, b"aa-k", b"v");
        let mut d = db.begin();
        d.delete(&t, b"aa-k".to_vec());
        d.commit().unwrap();
        let mut check = db.begin();
        assert_eq!(check.read(&t, b"aa-k").unwrap(), None);
    }

    #[test]
    fn last_write_wins_within_txn() {
        let (db, t) = db_with_table();
        let mut txn = db.begin();
        txn.insert(&t, b"aa-k".to_vec(), b"v1".to_vec());
        txn.update(&t, b"aa-k".to_vec(), b"v2".to_vec());
        txn.commit().unwrap();
        let mut check = db.begin();
        assert_eq!(check.read(&t, b"aa-k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn tid_epoch_tracks_manager() {
        let (db, t) = db_with_table();
        db.epochs().advance();
        db.epochs().advance();
        let mut txn = db.begin();
        txn.insert(&t, b"aa-k".to_vec(), b"v".to_vec());
        let tid = txn.commit().unwrap();
        assert_eq!(tid.epoch(), 3);
    }

    #[test]
    fn concurrent_counter_increments_serialize() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        let t = db.create_table("ctr", 1);
        seed(&db, &t, b"aa-c", &0u64.to_le_bytes());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        loop {
                            let mut txn = db.begin();
                            let cur = u64::from_le_bytes(
                                txn.read(&t, b"aa-c").unwrap().unwrap()[..8]
                                    .try_into()
                                    .unwrap(),
                            );
                            txn.update(&t, b"aa-c".to_vec(), (cur + 1).to_le_bytes().to_vec());
                            if txn.commit().is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let mut check = db.begin();
        let v = u64::from_le_bytes(
            check.read(&t, b"aa-c").unwrap().unwrap()[..8]
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, 2_000, "lost update detected");
    }
}
