//! Versioned records (Silo §4.2).
//!
//! A record is an atomic TID word plus the row bytes. Readers never write
//! shared memory: they snapshot the TID, copy the data, and re-check the
//! TID (a seqlock). Writers hold the TID's lock bit while mutating.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::tid::TidWord;

/// One record version in the store.
pub struct Record {
    tid: AtomicU64,
    /// Row bytes. The RwLock is *not* the concurrency-control mechanism —
    /// OCC is — it only makes the byte copy itself race-free so the crate
    /// contains no `unsafe`. Writers hold the TID lock bit *and* this
    /// write lock; readers validate the TID around the read.
    data: RwLock<Vec<u8>>,
}

impl Record {
    /// Creates a present record with the given initial TID and contents.
    pub fn new(tid: TidWord, data: Vec<u8>) -> Self {
        Record {
            tid: AtomicU64::new(tid.0),
            data: RwLock::new(data),
        }
    }

    /// Creates an absent placeholder (used by inserts before commit).
    pub fn absent(tid: TidWord) -> Self {
        Record {
            tid: AtomicU64::new(tid.with_absent(true).0),
            data: RwLock::new(Vec::new()),
        }
    }

    /// Current TID word.
    pub fn tid(&self) -> TidWord {
        TidWord(self.tid.load(Ordering::Acquire))
    }

    /// Optimistically reads the record.
    ///
    /// Returns `(observed_tid, data)`; the data is `None` if the record is
    /// logically absent. Spins while the record is locked by a writer.
    pub fn read(&self) -> (TidWord, Option<Vec<u8>>) {
        loop {
            let t1 = self.tid();
            if t1.is_locked() {
                std::hint::spin_loop();
                continue;
            }
            let data = if t1.is_absent() {
                None
            } else {
                Some(self.data.read().clone())
            };
            let t2 = self.tid();
            if t1 == t2 {
                return (t1, data);
            }
            // A writer intervened; retry.
        }
    }

    /// Attempts to acquire the record's write lock (phase 1 of commit).
    pub fn try_lock(&self) -> bool {
        let cur = self.tid.load(Ordering::Relaxed);
        if TidWord(cur).is_locked() {
            return false;
        }
        self.tid
            .compare_exchange(
                cur,
                TidWord(cur).locked().0,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Spins until the write lock is acquired.
    pub fn lock(&self) {
        while !self.try_lock() {
            std::hint::spin_loop();
        }
    }

    /// Releases the lock without changing the version (aborted commit).
    pub fn unlock(&self) {
        let cur = TidWord(self.tid.load(Ordering::Relaxed));
        debug_assert!(cur.is_locked());
        self.tid.store(cur.unlocked().0, Ordering::Release);
    }

    /// Installs new contents and releases the lock with `new_tid`
    /// (phase 3 of commit). Passing `None` marks the record absent.
    ///
    /// # Panics
    ///
    /// Debug-panics if the caller does not hold the lock or if `new_tid`
    /// still carries the lock bit.
    pub fn install(&self, new_tid: TidWord, data: Option<Vec<u8>>) {
        debug_assert!(self.tid().is_locked(), "install requires the lock");
        debug_assert!(!new_tid.is_locked(), "new tid must be unlocked");
        let absent = data.is_none();
        {
            let mut d = self.data.write();
            *d = data.unwrap_or_default();
        }
        self.tid
            .store(new_tid.with_absent(absent).0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_returns_data_and_tid() {
        let r = Record::new(TidWord::new(1, 1), vec![1, 2, 3]);
        let (tid, data) = r.read();
        assert_eq!(tid, TidWord::new(1, 1));
        assert_eq!(data, Some(vec![1, 2, 3]));
    }

    #[test]
    fn absent_record_reads_none() {
        let r = Record::absent(TidWord::ZERO);
        let (tid, data) = r.read();
        assert!(tid.is_absent());
        assert_eq!(data, None);
    }

    #[test]
    fn lock_install_unlock_cycle() {
        let r = Record::new(TidWord::new(1, 1), vec![0]);
        assert!(r.try_lock());
        assert!(!r.try_lock(), "no double lock");
        r.install(TidWord::new(1, 2), Some(vec![9]));
        let (tid, data) = r.read();
        assert_eq!(tid, TidWord::new(1, 2));
        assert_eq!(data, Some(vec![9]));
    }

    #[test]
    fn unlock_preserves_version() {
        let r = Record::new(TidWord::new(3, 7), vec![1]);
        r.lock();
        r.unlock();
        assert_eq!(r.tid(), TidWord::new(3, 7));
    }

    #[test]
    fn install_none_marks_absent() {
        let r = Record::new(TidWord::new(1, 1), vec![1]);
        r.lock();
        r.install(TidWord::new(1, 2), None);
        let (tid, data) = r.read();
        assert!(tid.is_absent());
        assert_eq!(data, None);
    }

    #[test]
    fn concurrent_readers_never_see_torn_writes() {
        // Writers alternate between two self-consistent images; readers
        // must only ever observe one of them in full.
        let r = Arc::new(Record::new(TidWord::new(0, 1), vec![0u8; 64]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seq = 2u64;
                while !stop.load(Ordering::Relaxed) {
                    let fill = (seq & 0xFF) as u8;
                    r.lock();
                    r.install(TidWord::new(0, seq), Some(vec![fill; 64]));
                    seq += 1;
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let (_tid, data) = r.read();
                        let data = data.expect("present");
                        let first = data[0];
                        assert!(data.iter().all(|&b| b == first), "torn read observed");
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
    }
}
