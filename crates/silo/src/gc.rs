//! Epoch-based garbage collection (Silo §4.9, simplified).
//!
//! Deletes in the OCC engine only mark records *absent*; the index entry
//! and record allocation survive so that concurrent validators can still
//! observe the TID. Reclamation must wait until every transaction that
//! could hold a reference has drained — Silo uses its epochs for this: a
//! record deleted in epoch `e` is reclaimable once the global epoch
//! reaches `e + 2`.
//!
//! The ZygOS paper **disables** this machinery for its evaluation because
//! the reclamation barrier causes >1ms p99 latency spikes (§6.3.1). It is
//! implemented here so that (a) the engine is complete and (b) the
//! disable switch is real: `Database::epochs().set_gc(true)` turns it on,
//! and `zygos-silo`'s tests demonstrate both reclamation and the safety
//! rule it obeys.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::table::Table;

/// One reclaim candidate: a key whose record went absent in `epoch`.
struct Candidate {
    table: Table,
    key: Vec<u8>,
    epoch: u64,
}

/// The queue of deferred reclamations.
#[derive(Default)]
pub struct GcQueue {
    pending: Mutex<VecDeque<Candidate>>,
}

impl GcQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        GcQueue::default()
    }

    /// Registers a record that went absent in `epoch`.
    pub fn note_absent(&self, table: &Table, key: Vec<u8>, epoch: u64) {
        self.pending.lock().push_back(Candidate {
            table: table.clone(),
            key,
            epoch,
        });
    }

    /// Number of queued candidates.
    pub fn pending(&self) -> usize {
        self.pending.lock().len()
    }

    /// Reclaims every candidate whose epoch is quiesced
    /// (`epoch + 2 ≤ current_epoch`). Returns the number of index entries
    /// actually removed.
    ///
    /// A candidate whose record was resurrected (re-inserted) or is still
    /// referenced by an in-flight transaction is simply dropped or
    /// re-queued by the safety check in [`Table::remove_if_absent`].
    pub fn collect(&self, current_epoch: u64) -> usize {
        let mut reclaimed = 0;
        let mut requeue = Vec::new();
        loop {
            let candidate = {
                let mut q = self.pending.lock();
                match q.front() {
                    Some(c) if c.epoch + 2 <= current_epoch => q.pop_front(),
                    _ => None,
                }
            };
            let Some(c) = candidate else { break };
            match c.table.remove_if_absent(&c.key) {
                crate::table::RemoveOutcome::Removed => reclaimed += 1,
                crate::table::RemoveOutcome::StillReferenced => {
                    // A transaction still holds the record; try next cycle.
                    requeue.push(c);
                }
                crate::table::RemoveOutcome::NotAbsent | crate::table::RemoveOutcome::Missing => {}
            }
        }
        let mut q = self.pending.lock();
        for c in requeue {
            q.push_back(c);
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use crate::db::Database;

    fn seed_and_delete(db: &Database) -> crate::table::Table {
        let t = db.create_table("t", 2);
        let mut txn = db.begin();
        txn.insert(&t, b"aaaa-k1".to_vec(), b"v".to_vec());
        txn.insert(&t, b"aaaa-k2".to_vec(), b"v".to_vec());
        txn.commit().unwrap();
        let mut d = db.begin();
        d.delete(&t, b"aaaa-k1".to_vec());
        d.commit().unwrap();
        t
    }

    #[test]
    fn gc_disabled_reclaims_nothing() {
        let db = Database::new();
        let t = seed_and_delete(&db);
        assert_eq!(db.gc().pending(), 0, "disabled GC queues nothing");
        db.epochs().advance();
        db.epochs().advance();
        assert_eq!(db.collect_garbage(), 0);
        assert_eq!(t.len(), 2, "absent record still indexed");
    }

    #[test]
    fn gc_reclaims_after_quiescence() {
        let db = Database::new();
        db.epochs().set_gc(true);
        let t = seed_and_delete(&db);
        assert_eq!(db.gc().pending(), 1);
        // Not yet quiesced: epoch must advance by 2.
        assert_eq!(db.collect_garbage(), 0);
        db.epochs().advance();
        assert_eq!(db.collect_garbage(), 0);
        db.epochs().advance();
        assert_eq!(db.collect_garbage(), 1);
        assert_eq!(t.len(), 1, "index entry physically removed");
        // The key behaves as never-existing again.
        let mut check = db.begin();
        assert_eq!(check.read(&t, b"aaaa-k1").unwrap(), None);
    }

    #[test]
    fn resurrected_keys_are_not_reclaimed() {
        let db = Database::new();
        db.epochs().set_gc(true);
        let t = seed_and_delete(&db);
        // Re-insert the deleted key before GC runs.
        let mut r = db.begin();
        r.insert(&t, b"aaaa-k1".to_vec(), b"back".to_vec());
        r.commit().unwrap();
        db.epochs().advance();
        db.epochs().advance();
        assert_eq!(db.collect_garbage(), 0, "live record must survive");
        let mut check = db.begin();
        assert_eq!(check.read(&t, b"aaaa-k1").unwrap(), Some(b"back".to_vec()));
    }

    #[test]
    fn reclamation_bumps_shard_version() {
        // Physical removal is a structural change: scans concurrent with
        // GC must fail phantom validation, not silently miss rows.
        let db = Database::new();
        db.epochs().set_gc(true);
        let t = seed_and_delete(&db);
        let shard = t.shard_of(b"aaaa-k1");
        let before = t.shard_version(shard);
        db.epochs().advance();
        db.epochs().advance();
        assert_eq!(db.collect_garbage(), 1);
        assert!(t.shard_version(shard) > before);
    }
}
