//! The database: a named-table catalog plus the epoch manager.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::epoch::EpochManager;
use crate::gc::GcQueue;
use crate::table::Table;
use crate::txn::Transaction;

/// Default number of leading key bytes used for shard selection.
///
/// All key encodings in this repository place the coarsest partitioning
/// component (e.g. the TPC-C warehouse + district) in the first four bytes,
/// so ranges that are scanned together always share a shard.
pub const DEFAULT_SHARD_PREFIX: usize = 4;

/// An in-memory OCC database.
pub struct Database {
    tables: RwLock<HashMap<String, Table>>,
    epochs: Arc<EpochManager>,
    gc: GcQueue,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates an empty database at epoch 1 with GC disabled.
    pub fn new() -> Self {
        Database {
            tables: RwLock::new(HashMap::new()),
            epochs: Arc::new(EpochManager::new()),
            gc: GcQueue::new(),
        }
    }

    /// Creates (or returns the existing) table `name` with `shards` shards.
    pub fn create_table(&self, name: &str, shards: usize) -> Table {
        let mut tables = self.tables.write();
        tables
            .entry(name.to_string())
            .or_insert_with(|| Table::new(name, shards, DEFAULT_SHARD_PREFIX))
            .clone()
    }

    /// Creates a table with an explicit shard-prefix length (tables whose
    /// keys are never range-scanned can shard on the full key for better
    /// spread, e.g. TPC-C `item` and `stock`).
    pub fn create_table_with_prefix(&self, name: &str, shards: usize, prefix_len: usize) -> Table {
        let mut tables = self.tables.write();
        tables
            .entry(name.to_string())
            .or_insert_with(|| Table::new(name, shards, prefix_len))
            .clone()
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<Table> {
        self.tables.read().get(name).cloned()
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Starts a transaction.
    pub fn begin(&self) -> Transaction<'_> {
        Transaction::new(self)
    }

    /// The epoch manager (group commit / GC control).
    pub fn epochs(&self) -> &Arc<EpochManager> {
        &self.epochs
    }

    /// The garbage-collection queue (candidates deferred for quiescence).
    pub fn gc(&self) -> &GcQueue {
        &self.gc
    }

    /// Reclaims quiesced deleted records; returns the number of index
    /// entries removed. A no-op unless `epochs().set_gc(true)` was called
    /// (the paper's evaluation keeps GC off, §6.3.1).
    pub fn collect_garbage(&self) -> usize {
        if !self.epochs.gc_enabled() {
            return 0;
        }
        self.gc.collect(self.epochs.current())
    }

    /// Runs `body` in a retry loop until it commits, returning the result
    /// and the number of aborts. `body` must be idempotent.
    pub fn run<T>(
        &self,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<T, crate::txn::CommitError>,
    ) -> (T, u32) {
        let mut aborts = 0;
        loop {
            let mut txn = self.begin();
            match body(&mut txn) {
                Ok(v) => match txn.commit() {
                    Ok(_) => return (v, aborts),
                    Err(_) => aborts += 1,
                },
                Err(_) => aborts += 1,
            }
            if aborts > 10_000 {
                panic!("transaction livelock: {aborts} aborts");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_is_idempotent() {
        let db = Database::new();
        let a = db.create_table("x", 4);
        let b = db.create_table("x", 8);
        assert_eq!(a.id(), b.id(), "same table returned");
        assert_eq!(db.table_names(), vec!["x"]);
    }

    #[test]
    fn table_lookup() {
        let db = Database::new();
        assert!(db.table("nope").is_none());
        db.create_table("t1", 1);
        assert!(db.table("t1").is_some());
    }

    #[test]
    fn run_retries_until_commit() {
        let db = Database::new();
        let t = db.create_table("t", 1);
        let mut setup = db.begin();
        setup.insert(&t, b"aa-k".to_vec(), vec![0]);
        setup.commit().unwrap();

        let (v, aborts) = db.run(|txn| {
            let cur = txn.read(&t, b"aa-k")?.expect("seeded");
            txn.update(&t, b"aa-k".to_vec(), vec![cur[0] + 1]);
            Ok(cur[0])
        });
        assert_eq!(v, 0);
        assert_eq!(aborts, 0);
    }
}
