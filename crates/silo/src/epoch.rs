//! Epoch management (Silo §4.3, §5).
//!
//! Silo groups commits into epochs: a designated thread advances the global
//! epoch every ~40ms; TIDs embed the epoch of their commit, and log/GC
//! machinery reclaims old versions once an epoch is globally quiesced.
//!
//! The paper's ZygOS evaluation **disables Silo's garbage collection**
//! because its epoch barrier introduces >1ms latency spikes at the 99th
//! percentile (§6.3.1). We reproduce that: the manager supports both a
//! manual advance (used by tests and the benchmark harness) and a
//! background ticker, and GC is a switch that defaults to off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The global epoch counter and GC switch.
pub struct EpochManager {
    epoch: AtomicU64,
    gc_enabled: AtomicBool,
    /// Count of epoch advances (telemetry).
    advances: AtomicU64,
}

impl Default for EpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochManager {
    /// Creates a manager at epoch 1 with GC disabled (the paper's setup).
    pub fn new() -> Self {
        EpochManager {
            epoch: AtomicU64::new(1),
            gc_enabled: AtomicBool::new(false),
            advances: AtomicU64::new(0),
        }
    }

    /// The current global epoch.
    pub fn current(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the epoch by one, returning the new value.
    pub fn advance(&self) -> u64 {
        self.advances.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Enables or disables garbage collection.
    pub fn set_gc(&self, enabled: bool) {
        self.gc_enabled.store(enabled, Ordering::Release);
    }

    /// True if GC is enabled.
    pub fn gc_enabled(&self) -> bool {
        self.gc_enabled.load(Ordering::Acquire)
    }

    /// Number of advances so far.
    pub fn advances(&self) -> u64 {
        self.advances.load(Ordering::Relaxed)
    }

    /// Spawns the epoch ticker thread (Silo advances every ~40ms).
    ///
    /// Returns a guard; dropping it stops the ticker.
    pub fn start_ticker(self: &Arc<Self>, period: Duration) -> TickerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let mgr = Arc::clone(self);
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                std::thread::park_timeout(period);
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                mgr.advance();
            }
        });
        TickerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the epoch ticker when dropped.
pub struct TickerGuard {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for TickerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch_one_gc_off() {
        let m = EpochManager::new();
        assert_eq!(m.current(), 1);
        assert!(!m.gc_enabled(), "paper's configuration: GC disabled");
    }

    #[test]
    fn advance_is_monotonic() {
        let m = EpochManager::new();
        assert_eq!(m.advance(), 2);
        assert_eq!(m.advance(), 3);
        assert_eq!(m.current(), 3);
        assert_eq!(m.advances(), 2);
    }

    #[test]
    fn gc_switch() {
        let m = EpochManager::new();
        m.set_gc(true);
        assert!(m.gc_enabled());
        m.set_gc(false);
        assert!(!m.gc_enabled());
    }

    #[test]
    fn ticker_advances_then_stops() {
        let m = Arc::new(EpochManager::new());
        let before = m.current();
        {
            let _guard = m.start_ticker(Duration::from_millis(5));
            std::thread::sleep(Duration::from_millis(60));
        }
        let after = m.current();
        assert!(after > before, "ticker advanced: {before} -> {after}");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(m.current(), after, "ticker stopped after guard drop");
    }
}
