//! TPC-C on the Silo-style engine (paper §6.3).
//!
//! All nine tables, the standard loader, NURand input generation, and the
//! five transactions in the standard mix:
//!
//! | transaction | share | character |
//! |---|---|---|
//! | NewOrder    | 45% | medium read-write, 5–15 lines |
//! | Payment     | 43% | small read-write |
//! | OrderStatus | 4%  | read-only |
//! | Delivery    | 4%  | large read-write (10 districts) |
//! | StockLevel  | 4%  | large read-only (≈200 rows) |
//!
//! The resulting service-time distribution is strongly multimodal — the
//! property Figure 10a exhibits and that makes TPC-C a stress test for
//! head-of-line blocking.

pub mod gen;
pub mod keys;
mod load;
pub mod rows;
mod txns;

use std::sync::atomic::{AtomicU64, Ordering};

use crate::db::Database;
use crate::table::Table;

pub use gen::{last_name, TpccRng};
pub use txns::TxnOutcome;

/// Scale configuration. [`TpccConfig::spec`] matches the specification;
/// smaller scales load faster for tests.
#[derive(Clone, Copy, Debug)]
pub struct TpccConfig {
    /// Number of warehouses (the paper's Silo setup scales per thread).
    pub warehouses: u16,
    /// Districts per warehouse (spec: 10).
    pub districts: u8,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u32,
    /// Item catalog size (spec: 100_000).
    pub items: u32,
    /// Initial orders per district (spec: 3000; the last third are
    /// undelivered).
    pub initial_orders: u32,
    /// Loader RNG seed.
    pub seed: u64,
}

impl TpccConfig {
    /// Specification-compliant scale for `warehouses` warehouses.
    pub fn spec(warehouses: u16) -> Self {
        TpccConfig {
            warehouses,
            districts: 10,
            customers_per_district: 3000,
            items: 100_000,
            initial_orders: 3000,
            seed: 42,
        }
    }

    /// A miniature scale for fast unit tests.
    pub fn tiny() -> Self {
        TpccConfig {
            warehouses: 1,
            districts: 2,
            customers_per_district: 30,
            items: 100,
            initial_orders: 30,
            seed: 42,
        }
    }
}

/// One of the five TPC-C transaction types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnType {
    /// 45% of the mix.
    NewOrder,
    /// 43%.
    Payment,
    /// 4%, read-only.
    OrderStatus,
    /// 4%, batched read-write.
    Delivery,
    /// 4%, read-only.
    StockLevel,
}

impl TxnType {
    /// All five types in display order.
    pub const ALL: [TxnType; 5] = [
        TxnType::NewOrder,
        TxnType::Payment,
        TxnType::OrderStatus,
        TxnType::Delivery,
        TxnType::StockLevel,
    ];

    /// Samples the standard mix (45/43/4/4/4).
    pub fn sample(rng: &mut TpccRng) -> TxnType {
        match rng.uniform(1, 100) {
            1..=45 => TxnType::NewOrder,
            46..=88 => TxnType::Payment,
            89..=92 => TxnType::OrderStatus,
            93..=96 => TxnType::Delivery,
            _ => TxnType::StockLevel,
        }
    }

    /// Figure-10a label.
    pub fn label(&self) -> &'static str {
        match self {
            TxnType::NewOrder => "NewOrder",
            TxnType::Payment => "Payment",
            TxnType::OrderStatus => "OrderStatus",
            TxnType::Delivery => "Delivery",
            TxnType::StockLevel => "StockLevel",
        }
    }
}

/// The loaded TPC-C database and its table handles.
pub struct Tpcc {
    /// The underlying OCC database.
    pub db: Database,
    /// Scale actually loaded.
    pub config: TpccConfig,
    pub(crate) warehouse: Table,
    pub(crate) district: Table,
    pub(crate) customer: Table,
    pub(crate) customer_name: Table,
    pub(crate) history: Table,
    pub(crate) new_order: Table,
    pub(crate) order: Table,
    pub(crate) order_cust: Table,
    pub(crate) order_line: Table,
    pub(crate) item: Table,
    pub(crate) stock: Table,
    pub(crate) history_seq: AtomicU64,
    /// Simulated wall clock for date fields.
    pub(crate) clock: AtomicU64,
}

impl Tpcc {
    /// Creates the schema and loads initial data.
    pub fn load(config: TpccConfig) -> Self {
        let db = Database::new();
        let shards = 64;
        let t = Tpcc {
            warehouse: db.create_table("warehouse", shards),
            district: db.create_table("district", shards),
            customer: db.create_table("customer", shards),
            customer_name: db.create_table("customer_name", shards),
            history: db.create_table("history", shards),
            new_order: db.create_table("new_order", shards),
            order: db.create_table("oorder", shards),
            order_cust: db.create_table("order_cust", shards),
            order_line: db.create_table("order_line", shards),
            item: db.create_table_with_prefix("item", 256, 8),
            stock: db.create_table_with_prefix("stock", 256, 8),
            db,
            config,
            history_seq: AtomicU64::new(0),
            clock: AtomicU64::new(1),
        };
        load::populate(&t);
        t
    }

    /// Advances and returns the simulated date.
    pub(crate) fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_history_seq(&self) -> u64 {
        self.history_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Executes one transaction of the given type with generated inputs,
    /// retrying on OCC conflicts until it commits (or user-aborts, for the
    /// 1% of NewOrder with an invalid item).
    pub fn run(&self, kind: TxnType, rng: &mut TpccRng) -> TxnOutcome {
        match kind {
            TxnType::NewOrder => txns::new_order(self, rng),
            TxnType::Payment => txns::payment(self, rng),
            TxnType::OrderStatus => txns::order_status(self, rng),
            TxnType::Delivery => txns::delivery(self, rng),
            TxnType::StockLevel => txns::stock_level(self, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_match_spec() {
        let mut rng = TpccRng::new(7);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(TxnType::sample(&mut rng)).or_insert(0u32) += 1;
        }
        let frac = |t: TxnType| counts[&t] as f64 / n as f64;
        assert!((frac(TxnType::NewOrder) - 0.45).abs() < 0.01);
        assert!((frac(TxnType::Payment) - 0.43).abs() < 0.01);
        assert!((frac(TxnType::OrderStatus) - 0.04).abs() < 0.005);
        assert!((frac(TxnType::Delivery) - 0.04).abs() < 0.005);
        assert!((frac(TxnType::StockLevel) - 0.04).abs() < 0.005);
    }

    #[test]
    fn loads_and_runs_every_transaction_type() {
        let t = Tpcc::load(TpccConfig::tiny());
        let mut rng = TpccRng::new(11);
        for kind in TxnType::ALL {
            for _ in 0..20 {
                let out = t.run(kind, &mut rng);
                assert!(
                    out.committed || (kind == TxnType::NewOrder && out.user_aborted),
                    "{kind:?} failed: {out:?}"
                );
            }
        }
    }
}
