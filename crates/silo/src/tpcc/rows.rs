//! Row types and their byte codecs for the nine TPC-C tables.
//!
//! Rows serialize with a compact hand-rolled codec (little-endian integers,
//! length-prefixed strings) — external serialization crates are outside the
//! repository's dependency budget, and the codec doubles as a stable wire
//! format for the networked Silo port.

use bytes::{Buf, BufMut};

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> String {
    let len = buf.get_u16_le() as usize;
    let s = String::from_utf8_lossy(&buf[..len]).into_owned();
    buf.advance(len);
    s
}

/// A row that can encode/decode itself.
pub trait Row: Sized {
    /// Serializes the row.
    fn encode(&self) -> Vec<u8>;
    /// Deserializes a row; panics on malformed input (store-internal data).
    fn decode(bytes: &[u8]) -> Self;
}

macro_rules! row {
    ($(#[$meta:meta])* $name:ident { $($(#[$fmeta:meta])* $field:ident : $ty:tt),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Clone, Debug, PartialEq)]
        pub struct $name {
            $( $(#[$fmeta])* pub $field: row!(@type $ty), )+
        }

        impl Row for $name {
            fn encode(&self) -> Vec<u8> {
                let mut buf = Vec::with_capacity(64);
                $( row!(@enc buf, self.$field, $ty); )+
                buf
            }

            fn decode(bytes: &[u8]) -> Self {
                let mut b = bytes;
                $( let $field = row!(@dec b, $ty); )+
                $name { $( $field, )+ }
            }
        }
    };
    (@type str) => { String };
    (@type $ty:ty) => { $ty };
    (@enc $buf:ident, $v:expr, u8) => { $buf.put_u8($v) };
    (@enc $buf:ident, $v:expr, u16) => { $buf.put_u16_le($v) };
    (@enc $buf:ident, $v:expr, u32) => { $buf.put_u32_le($v) };
    (@enc $buf:ident, $v:expr, u64) => { $buf.put_u64_le($v) };
    (@enc $buf:ident, $v:expr, i32) => { $buf.put_i32_le($v) };
    (@enc $buf:ident, $v:expr, f64) => { $buf.put_f64_le($v) };
    (@enc $buf:ident, $v:expr, str) => { put_str(&mut $buf, &$v) };
    (@dec $b:ident, u8) => { $b.get_u8() };
    (@dec $b:ident, u16) => { $b.get_u16_le() };
    (@dec $b:ident, u32) => { $b.get_u32_le() };
    (@dec $b:ident, u64) => { $b.get_u64_le() };
    (@dec $b:ident, i32) => { $b.get_i32_le() };
    (@dec $b:ident, f64) => { $b.get_f64_le() };
    (@dec $b:ident, str) => { get_str(&mut $b) };
}

row! {
    /// WAREHOUSE.
    Warehouse {
        w_id: u16,
        name: str,
        street1: str,
        street2: str,
        city: str,
        state: str,
        zip: str,
        tax: f64,
        ytd: f64,
    }
}

row! {
    /// DISTRICT.
    District {
        d_id: u8,
        w_id: u16,
        name: str,
        street1: str,
        street2: str,
        city: str,
        state: str,
        zip: str,
        tax: f64,
        ytd: f64,
        next_o_id: u32,
    }
}

row! {
    /// CUSTOMER.
    Customer {
        c_id: u32,
        d_id: u8,
        w_id: u16,
        first: str,
        middle: str,
        last: str,
        street1: str,
        city: str,
        state: str,
        zip: str,
        phone: str,
        since: u64,
        credit: str,
        credit_lim: f64,
        discount: f64,
        balance: f64,
        ytd_payment: f64,
        payment_cnt: u16,
        delivery_cnt: u16,
        data: str,
    }
}

row! {
    /// HISTORY.
    History {
        c_id: u32,
        c_d_id: u8,
        c_w_id: u16,
        d_id: u8,
        w_id: u16,
        date: u64,
        amount: f64,
        data: str,
    }
}

row! {
    /// NEW-ORDER.
    NewOrderRow {
        o_id: u32,
        d_id: u8,
        w_id: u16,
    }
}

row! {
    /// OORDER. `carrier_id == 0` encodes SQL NULL.
    Order {
        o_id: u32,
        d_id: u8,
        w_id: u16,
        c_id: u32,
        entry_d: u64,
        carrier_id: u8,
        ol_cnt: u8,
        all_local: u8,
    }
}

row! {
    /// ORDER-LINE. `delivery_d == 0` encodes SQL NULL.
    OrderLine {
        o_id: u32,
        d_id: u8,
        w_id: u16,
        ol_number: u8,
        i_id: u32,
        supply_w_id: u16,
        delivery_d: u64,
        quantity: u8,
        amount: f64,
        dist_info: str,
    }
}

row! {
    /// ITEM.
    Item {
        i_id: u32,
        im_id: u32,
        name: str,
        price: f64,
        data: str,
    }
}

row! {
    /// STOCK. The ten `s_dist_xx` strings are concatenated in `dists`
    /// (24 bytes each, in district order).
    Stock {
        i_id: u32,
        w_id: u16,
        quantity: i32,
        dists: str,
        ytd: f64,
        order_cnt: u16,
        remote_cnt: u16,
        data: str,
    }
}

impl Stock {
    /// The 24-char `s_dist` string for district `d` (1-based).
    pub fn dist_for(&self, d: u8) -> &str {
        let start = (d as usize - 1) * 24;
        &self.dists[start..start + 24]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warehouse_roundtrip() {
        let w = Warehouse {
            w_id: 3,
            name: "wh-3".into(),
            street1: "1 Main".into(),
            street2: "Suite 2".into(),
            city: "Lausanne".into(),
            state: "VD".into(),
            zip: "101111".into(),
            tax: 0.125,
            ytd: 300_000.0,
        };
        assert_eq!(Warehouse::decode(&w.encode()), w);
    }

    #[test]
    fn customer_roundtrip_with_unicode_safe_strings() {
        let c = Customer {
            c_id: 42,
            d_id: 9,
            w_id: 1,
            first: "Ada".into(),
            middle: "OE".into(),
            last: "BARBARBAR".into(),
            street1: "x".into(),
            city: "y".into(),
            state: "zz".into(),
            zip: "123456789".into(),
            phone: "0000000000000000".into(),
            since: 12345,
            credit: "GC".into(),
            credit_lim: 50_000.0,
            discount: 0.3,
            balance: -10.0,
            ytd_payment: 10.0,
            payment_cnt: 1,
            delivery_cnt: 0,
            data: "d".repeat(300),
        };
        assert_eq!(Customer::decode(&c.encode()), c);
    }

    #[test]
    fn order_null_conventions() {
        let o = Order {
            o_id: 1,
            d_id: 1,
            w_id: 1,
            c_id: 5,
            entry_d: 99,
            carrier_id: 0,
            ol_cnt: 11,
            all_local: 1,
        };
        let d = Order::decode(&o.encode());
        assert_eq!(d.carrier_id, 0, "0 = NULL carrier");
    }

    #[test]
    fn stock_dist_accessor() {
        let dists: String = (1..=10).map(|d| format!("{d:024}")).collect();
        let s = Stock {
            i_id: 1,
            w_id: 1,
            quantity: 50,
            dists,
            ytd: 0.0,
            order_cnt: 0,
            remote_cnt: 0,
            data: "x".into(),
        };
        assert_eq!(s.dist_for(1), &format!("{:024}", 1));
        assert_eq!(s.dist_for(10), &format!("{:024}", 10));
        assert_eq!(Stock::decode(&s.encode()), s);
    }

    #[test]
    fn all_rows_roundtrip() {
        let ol = OrderLine {
            o_id: 7,
            d_id: 2,
            w_id: 1,
            ol_number: 3,
            i_id: 1234,
            supply_w_id: 1,
            delivery_d: 0,
            quantity: 5,
            amount: 123.45,
            dist_info: "D".repeat(24),
        };
        assert_eq!(OrderLine::decode(&ol.encode()), ol);
        let h = History {
            c_id: 1,
            c_d_id: 1,
            c_w_id: 1,
            d_id: 1,
            w_id: 1,
            date: 5,
            amount: 10.0,
            data: "hist".into(),
        };
        assert_eq!(History::decode(&h.encode()), h);
        let no = NewOrderRow {
            o_id: 9,
            d_id: 8,
            w_id: 7,
        };
        assert_eq!(NewOrderRow::decode(&no.encode()), no);
        let i = Item {
            i_id: 3,
            im_id: 4,
            name: "widget".into(),
            price: 9.99,
            data: "ORIGINAL".into(),
        };
        assert_eq!(Item::decode(&i.encode()), i);
    }
}
