//! The TPC-C initial-population loader (spec clause 4.3.3).
//!
//! Loads warehouses, districts, customers (with the last-name secondary
//! index), the item catalog, per-warehouse stock, and the initial order
//! history: `initial_orders` per district, the most recent third
//! undelivered (present in NEW-ORDER with NULL carrier/delivery dates).

use super::gen::{last_name, TpccRng};
use super::rows::{Customer, District, Item, NewOrderRow, Order, OrderLine, Row, Stock, Warehouse};
use super::{keys, Tpcc};

/// Populates all nine tables.
pub(super) fn populate(t: &Tpcc) {
    let cfg = t.config;
    let mut rng = TpccRng::new(cfg.seed);

    load_items(t, &mut rng);
    for w in 1..=cfg.warehouses {
        load_warehouse(t, w, &mut rng);
    }
}

fn load_items(t: &Tpcc, rng: &mut TpccRng) {
    let mut txn = t.db.begin();
    for i_id in 1..=t.config.items {
        let data = if rng.chance(10) {
            // 10% of items carry the "ORIGINAL" marker (clause 4.3.3.1).
            format!("{}ORIGINAL{}", rng.a_string(4, 10), rng.a_string(4, 10))
        } else {
            rng.a_string(26, 50)
        };
        let item = Item {
            i_id,
            im_id: rng.uniform(1, 10_000) as u32,
            name: rng.a_string(14, 24),
            price: rng.uniform_f64(1.0, 100.0),
            data,
        };
        txn.insert(&t.item, keys::item(i_id), item.encode());
        // Commit in chunks to bound transaction size.
        if i_id % 5_000 == 0 {
            let done = std::mem::replace(&mut txn, t.db.begin());
            done.commit().expect("loader commit");
        }
    }
    txn.commit().expect("loader commit");
}

fn load_warehouse(t: &Tpcc, w_id: u16, rng: &mut TpccRng) {
    let mut txn = t.db.begin();
    let w = Warehouse {
        w_id,
        name: rng.a_string(6, 10),
        street1: rng.a_string(10, 20),
        street2: rng.a_string(10, 20),
        city: rng.a_string(10, 20),
        state: rng.a_string(2, 2),
        zip: format!("{}11111", rng.n_string(4, 4)),
        tax: rng.uniform_f64(0.0, 0.2),
        ytd: 300_000.0,
    };
    txn.insert(&t.warehouse, keys::warehouse(w_id), w.encode());
    txn.commit().expect("loader commit");

    // Stock for every item.
    let mut txn = t.db.begin();
    for i_id in 1..=t.config.items {
        let dists: String = (0..10).map(|_| rng.a_string(24, 24)).collect();
        let data = if rng.chance(10) {
            format!("{}ORIGINAL{}", rng.a_string(4, 10), rng.a_string(4, 10))
        } else {
            rng.a_string(26, 50)
        };
        let s = Stock {
            i_id,
            w_id,
            quantity: rng.uniform(10, 100) as i32,
            dists,
            ytd: 0.0,
            order_cnt: 0,
            remote_cnt: 0,
            data,
        };
        txn.insert(&t.stock, keys::stock(w_id, i_id), s.encode());
        if i_id % 2_000 == 0 {
            let done = std::mem::replace(&mut txn, t.db.begin());
            done.commit().expect("loader commit");
        }
    }
    txn.commit().expect("loader commit");

    for d_id in 1..=t.config.districts {
        load_district(t, w_id, d_id, rng);
    }
}

fn load_district(t: &Tpcc, w_id: u16, d_id: u8, rng: &mut TpccRng) {
    let n_cust = t.config.customers_per_district;
    let n_orders = t.config.initial_orders.min(n_cust);

    let mut txn = t.db.begin();
    let d = District {
        d_id,
        w_id,
        name: rng.a_string(6, 10),
        street1: rng.a_string(10, 20),
        street2: rng.a_string(10, 20),
        city: rng.a_string(10, 20),
        state: rng.a_string(2, 2),
        zip: format!("{}11111", rng.n_string(4, 4)),
        tax: rng.uniform_f64(0.0, 0.2),
        ytd: 30_000.0,
        next_o_id: n_orders + 1,
    };
    txn.insert(&t.district, keys::district(w_id, d_id), d.encode());
    txn.commit().expect("loader commit");

    // Customers. The first 1000 last names cycle through the syllable
    // space; beyond that, NURand (clause 4.3.3.1).
    let mut txn = t.db.begin();
    for c_id in 1..=n_cust {
        let lname = if c_id <= 1_000 {
            last_name((c_id - 1) as u64)
        } else {
            last_name(rng.last_name_index())
        };
        let credit = if rng.chance(10) { "BC" } else { "GC" };
        let c = Customer {
            c_id,
            d_id,
            w_id,
            first: rng.a_string(8, 16),
            middle: "OE".into(),
            last: lname.clone(),
            street1: rng.a_string(10, 20),
            city: rng.a_string(10, 20),
            state: rng.a_string(2, 2),
            zip: format!("{}11111", rng.n_string(4, 4)),
            phone: rng.n_string(16, 16),
            since: 1,
            credit: credit.into(),
            credit_lim: 50_000.0,
            discount: rng.uniform_f64(0.0, 0.5),
            balance: -10.0,
            ytd_payment: 10.0,
            payment_cnt: 1,
            delivery_cnt: 0,
            data: rng.a_string(300, 500),
        };
        txn.insert(&t.customer, keys::customer(w_id, d_id, c_id), c.encode());
        txn.insert(
            &t.customer_name,
            keys::customer_name(w_id, d_id, &lname, c_id),
            c_id.to_le_bytes().to_vec(),
        );
        if c_id % 500 == 0 {
            let done = std::mem::replace(&mut txn, t.db.begin());
            done.commit().expect("loader commit");
        }
    }
    txn.commit().expect("loader commit");

    // Initial orders: a random permutation of customers, one order each;
    // the most recent third sit undelivered in NEW-ORDER.
    let mut perm: Vec<u32> = (1..=n_cust).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.uniform(0, i as u64) as usize;
        perm.swap(i, j);
    }
    let delivered_cutoff = n_orders - n_orders / 3;
    let mut txn = t.db.begin();
    for o_id in 1..=n_orders {
        let c_id = perm[(o_id - 1) as usize];
        let ol_cnt = rng.uniform(5, 15) as u8;
        let delivered = o_id <= delivered_cutoff;
        let o = Order {
            o_id,
            d_id,
            w_id,
            c_id,
            entry_d: 1,
            carrier_id: if delivered {
                rng.uniform(1, 10) as u8
            } else {
                0
            },
            ol_cnt,
            all_local: 1,
        };
        txn.insert(&t.order, keys::order(w_id, d_id, o_id), o.encode());
        txn.insert(
            &t.order_cust,
            keys::order_by_customer(w_id, d_id, c_id, o_id),
            o_id.to_le_bytes().to_vec(),
        );
        if !delivered {
            let no = NewOrderRow { o_id, d_id, w_id };
            txn.insert(&t.new_order, keys::new_order(w_id, d_id, o_id), no.encode());
        }
        for ol_number in 1..=ol_cnt {
            let ol = OrderLine {
                o_id,
                d_id,
                w_id,
                ol_number,
                i_id: rng.uniform(1, t.config.items as u64) as u32,
                supply_w_id: w_id,
                delivery_d: if delivered { 1 } else { 0 },
                quantity: 5,
                amount: if delivered {
                    0.0
                } else {
                    rng.uniform_f64(0.01, 9_999.99)
                },
                dist_info: rng.a_string(24, 24),
            };
            txn.insert(
                &t.order_line,
                keys::order_line(w_id, d_id, o_id, ol_number),
                ol.encode(),
            );
        }
        if o_id % 200 == 0 {
            let done = std::mem::replace(&mut txn, t.db.begin());
            done.commit().expect("loader commit");
        }
    }
    txn.commit().expect("loader commit");
}

#[cfg(test)]
mod tests {
    use super::super::{Tpcc, TpccConfig};
    use super::*;

    fn tiny() -> Tpcc {
        Tpcc::load(TpccConfig::tiny())
    }

    #[test]
    fn row_counts_match_scale() {
        let t = tiny();
        let cfg = t.config;
        assert_eq!(t.warehouse.len(), cfg.warehouses as usize);
        assert_eq!(
            t.district.len(),
            (cfg.warehouses as usize) * cfg.districts as usize
        );
        assert_eq!(
            t.customer.len(),
            (cfg.warehouses as usize)
                * cfg.districts as usize
                * cfg.customers_per_district as usize
        );
        assert_eq!(t.item.len(), cfg.items as usize);
        assert_eq!(t.stock.len(), cfg.warehouses as usize * cfg.items as usize);
    }

    #[test]
    fn a_third_of_orders_are_undelivered() {
        let t = tiny();
        let per_district = t.config.initial_orders as usize / 3;
        let districts = t.config.warehouses as usize * t.config.districts as usize;
        assert_eq!(t.new_order.len(), per_district * districts);
    }

    #[test]
    fn district_next_o_id_is_consistent() {
        let t = tiny();
        let mut txn = t.db.begin();
        let d = District::decode(
            &txn.read(&t.district, &keys::district(1, 1))
                .unwrap()
                .expect("district exists"),
        );
        assert_eq!(d.next_o_id, t.config.initial_orders + 1);
    }

    #[test]
    fn customer_name_index_resolves() {
        let t = tiny();
        let mut txn = t.db.begin();
        // Customer 1 has last name BARBARBAR (index 0).
        let (lo, hi) = keys::customer_name_range(1, 1, &last_name(0));
        let hits = txn.scan(&t.customer_name, &lo, &hi, 100, false).unwrap();
        assert!(!hits.is_empty());
        let c_id = u32::from_le_bytes(hits[0].1[..4].try_into().unwrap());
        let c = Customer::decode(
            &txn.read(&t.customer, &keys::customer(1, 1, c_id))
                .unwrap()
                .expect("customer exists"),
        );
        assert_eq!(c.last, last_name(0));
    }
}
