//! TPC-C random input generation (TPC-C spec clause 2 & 4.3).
//!
//! Implements the spec's `NURand` non-uniform distribution, last-name
//! syllable construction, and random string/number helpers, on a local
//! xorshift generator (no external dependencies, deterministic).

/// Deterministic generator for workload inputs.
#[derive(Clone, Debug)]
pub struct TpccRng {
    state: u64,
    /// C constant for NURand(1023, ..) (customer last name).
    pub c_last: u64,
    /// C constant for NURand(8191, ..) (item id).
    pub c_id: u64,
}

impl TpccRng {
    /// Creates a generator; the NURand C constants derive from the seed as
    /// the spec allows (any value in range).
    pub fn new(seed: u64) -> Self {
        let mut r = TpccRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            c_last: 0,
            c_id: 0,
        };
        if r.state == 0 {
            r.state = 1;
        }
        r.c_last = r.uniform(0, 255);
        r.c_id = r.uniform(0, 1023);
        r
    }

    fn next(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    /// The spec's non-uniform random: `NURand(A, x, y)`.
    pub fn nurand(&mut self, a: u64, x: u64, y: u64) -> u64 {
        let c = match a {
            255 => self.c_last,
            1023 => self.c_id,
            8191 => self.c_id,
            _ => 0,
        };
        (((self.uniform(0, a) | self.uniform(x, y)) + c) % (y - x + 1)) + x
    }

    /// Customer id: NURand(1023, 1, 3000).
    pub fn customer_id(&mut self) -> u32 {
        self.nurand(1023, 1, 3000) as u32
    }

    /// Item id: NURand(8191, 1, 100000).
    pub fn item_id(&mut self) -> u32 {
        self.nurand(8191, 1, 100_000) as u32
    }

    /// Last-name index for running transactions: NURand(255, 0, 999).
    pub fn last_name_index(&mut self) -> u64 {
        self.nurand(255, 0, 999)
    }

    /// Random alphanumeric string of length in `[lo, hi]`.
    pub fn a_string(&mut self, lo: u64, hi: u64) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        let len = self.uniform(lo, hi) as usize;
        (0..len)
            .map(|_| CHARS[self.uniform(0, CHARS.len() as u64 - 1) as usize] as char)
            .collect()
    }

    /// Random numeric string of length in `[lo, hi]`.
    pub fn n_string(&mut self, lo: u64, hi: u64) -> String {
        let len = self.uniform(lo, hi) as usize;
        (0..len)
            .map(|_| (b'0' + self.uniform(0, 9) as u8) as char)
            .collect()
    }

    /// True with probability `pct`%.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.uniform(1, 100) <= pct
    }
}

/// The spec's last-name syllables (clause 4.3.2.3).
pub const NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Builds a last name from a number in `[0, 999]`.
pub fn last_name(num: u64) -> String {
    debug_assert!(num < 1000);
    format!(
        "{}{}{}",
        NAME_SYLLABLES[(num / 100) as usize],
        NAME_SYLLABLES[((num / 10) % 10) as usize],
        NAME_SYLLABLES[(num % 10) as usize]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let mut r = TpccRng::new(1);
        for _ in 0..10_000 {
            let v = r.uniform(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn nurand_in_range() {
        let mut r = TpccRng::new(2);
        for _ in 0..10_000 {
            let c = r.customer_id();
            assert!((1..=3000).contains(&c));
            let i = r.item_id();
            assert!((1..=100_000).contains(&i));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // NURand concentrates mass: the most popular decile should receive
        // clearly more than 10% of draws.
        let mut r = TpccRng::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.nurand(1023, 1, 3000);
            counts[((v - 1) * 10 / 3000) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 13_000, "max decile = {max}: {counts:?}");
    }

    #[test]
    fn last_names_match_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn strings_have_requested_lengths() {
        let mut r = TpccRng::new(4);
        for _ in 0..100 {
            let s = r.a_string(8, 16);
            assert!((8..=16).contains(&s.len()));
            let n = r.n_string(4, 4);
            assert_eq!(n.len(), 4);
            assert!(n.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn chance_probability() {
        let mut r = TpccRng::new(5);
        let hits = (0..100_000).filter(|_| r.chance(40)).count();
        assert!((38_000..42_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = TpccRng::new(9);
        let mut b = TpccRng::new(9);
        for _ in 0..100 {
            assert_eq!(a.uniform(0, 1_000_000), b.uniform(0, 1_000_000));
        }
    }
}
