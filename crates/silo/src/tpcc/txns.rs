//! The five TPC-C transactions (spec clause 2), implemented against the
//! OCC engine with per-transaction retry on validation failure.

use super::gen::{last_name, TpccRng};
use super::keys;
use super::rows::{
    Customer, District, History, Item, NewOrderRow, Order, OrderLine, Row, Stock, Warehouse,
};
use super::Tpcc;
use crate::txn::{CommitError, Transaction};

/// Result of one logical transaction execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct TxnOutcome {
    /// The transaction committed.
    pub committed: bool,
    /// NewOrder's 1% intentional rollback (invalid item) — counted as a
    /// successful execution by the spec, but nothing commits.
    pub user_aborted: bool,
    /// OCC validation retries before success.
    pub retries: u32,
    /// Rows read or written (a rough size measure).
    pub rows_touched: u32,
}

const MAX_RETRIES: u32 = 10_000;

fn retry_loop(
    t: &Tpcc,
    mut body: impl FnMut(&mut Transaction<'_>) -> Result<(u32, bool), CommitError>,
) -> TxnOutcome {
    let mut retries = 0;
    loop {
        let mut txn = t.db.begin();
        match body(&mut txn) {
            Ok((rows, user_abort)) => {
                if user_abort {
                    // Intentional rollback: drop the txn uncommitted.
                    return TxnOutcome {
                        committed: false,
                        user_aborted: true,
                        retries,
                        rows_touched: rows,
                    };
                }
                match txn.commit() {
                    Ok(_) => {
                        return TxnOutcome {
                            committed: true,
                            user_aborted: false,
                            retries,
                            rows_touched: rows,
                        }
                    }
                    Err(_) => retries += 1,
                }
            }
            Err(_) => retries += 1,
        }
        assert!(retries < MAX_RETRIES, "transaction livelock");
    }
}

/// Resolves a customer 60%-by-last-name / 40%-by-id (clauses 2.5.1.2,
/// 2.6.1.2). Returns (c_id, decoded customer).
fn select_customer(
    t: &Tpcc,
    txn: &mut Transaction<'_>,
    rng_byname: bool,
    name_idx: u64,
    c_id_direct: u32,
    w: u16,
    d: u8,
) -> Result<Option<(u32, Customer)>, CommitError> {
    let c_id = if rng_byname {
        let (lo, hi) = keys::customer_name_range(w, d, &last_name(name_idx));
        let hits = txn.scan(&t.customer_name, &lo, &hi, 100, false)?;
        if hits.is_empty() {
            // Sub-spec scales may miss a last name entirely; fall back to
            // the direct id (spec scale always has ≥1 match per name).
            c_id_direct
        } else {
            // Position n/2 rounded up (clause 2.5.2.2).
            let pos = hits.len().div_ceil(2) - 1;
            u32::from_le_bytes(hits[pos].1[..4].try_into().expect("c_id payload"))
        }
    } else {
        c_id_direct
    };
    let bytes = txn
        .read(&t.customer, &keys::customer(w, d, c_id))?
        .expect("customer must exist");
    Ok(Some((c_id, Customer::decode(&bytes))))
}

/// NewOrder (clause 2.4): 45% of the mix.
pub(super) fn new_order(t: &Tpcc, rng: &mut TpccRng) -> TxnOutcome {
    let cfg = t.config;
    let w = rng.uniform(1, cfg.warehouses as u64) as u16;
    let d = rng.uniform(1, cfg.districts as u64) as u8;
    let c = (rng.customer_id() % cfg.customers_per_district).max(1);
    let ol_cnt = rng.uniform(5, 15) as u8;
    let rollback = rng.chance(1);
    let lines: Vec<(u32, u16, u8)> = (0..ol_cnt)
        .map(|i| {
            let invalid = rollback && i == ol_cnt - 1;
            let i_id = if invalid {
                u32::MAX // Unused item number → user abort.
            } else {
                (rng.item_id() % cfg.items).max(1)
            };
            let supply_w = if cfg.warehouses > 1 && rng.chance(1) {
                // 1% remote supply warehouse.
                let mut o = rng.uniform(1, cfg.warehouses as u64) as u16;
                if o == w {
                    o = o % cfg.warehouses + 1;
                }
                o
            } else {
                w
            };
            (i_id, supply_w, rng.uniform(1, 10) as u8)
        })
        .collect();
    let entry_d = t.now();

    retry_loop(t, |txn| {
        let mut rows = 3;
        let wrow = Warehouse::decode(
            &txn.read(&t.warehouse, &keys::warehouse(w))?
                .expect("warehouse"),
        );
        let mut drow = District::decode(
            &txn.read(&t.district, &keys::district(w, d))?
                .expect("district"),
        );
        let o_id = drow.next_o_id;
        drow.next_o_id += 1;
        txn.update(&t.district, keys::district(w, d), drow.encode());
        let crow = Customer::decode(
            &txn.read(&t.customer, &keys::customer(w, d, c))?
                .expect("customer"),
        );

        let all_local = lines.iter().all(|&(_, sw, _)| sw == w);
        let order = Order {
            o_id,
            d_id: d,
            w_id: w,
            c_id: c,
            entry_d,
            carrier_id: 0,
            ol_cnt,
            all_local: all_local as u8,
        };
        txn.insert(&t.order, keys::order(w, d, o_id), order.encode());
        txn.insert(
            &t.order_cust,
            keys::order_by_customer(w, d, c, o_id),
            o_id.to_le_bytes().to_vec(),
        );
        txn.insert(
            &t.new_order,
            keys::new_order(w, d, o_id),
            NewOrderRow {
                o_id,
                d_id: d,
                w_id: w,
            }
            .encode(),
        );

        let mut total = 0.0;
        for (ol_number, &(i_id, supply_w, qty)) in lines.iter().enumerate() {
            let Some(item_bytes) = txn.read(&t.item, &keys::item(i_id))? else {
                // Unused item number: the spec's 1% rollback case.
                return Ok((rows, true));
            };
            let item = Item::decode(&item_bytes);
            let mut stock = Stock::decode(
                &txn.read(&t.stock, &keys::stock(supply_w, i_id))?
                    .expect("stock"),
            );
            stock.quantity = if stock.quantity >= qty as i32 + 10 {
                stock.quantity - qty as i32
            } else {
                stock.quantity - qty as i32 + 91
            };
            stock.ytd += qty as f64;
            stock.order_cnt += 1;
            if supply_w != w {
                stock.remote_cnt += 1;
            }
            let dist_info = stock.dist_for(d).to_string();
            txn.update(&t.stock, keys::stock(supply_w, i_id), stock.encode());
            let amount = qty as f64 * item.price;
            total += amount;
            let ol = OrderLine {
                o_id,
                d_id: d,
                w_id: w,
                ol_number: ol_number as u8 + 1,
                i_id,
                supply_w_id: supply_w,
                delivery_d: 0,
                quantity: qty,
                amount,
                dist_info,
            };
            txn.insert(
                &t.order_line,
                keys::order_line(w, d, o_id, ol_number as u8 + 1),
                ol.encode(),
            );
            rows += 3;
        }
        // The spec computes the total with taxes and discount.
        let _ = total * (1.0 - crow.discount) * (1.0 + wrow.tax + drow.tax);
        Ok((rows, false))
    })
}

/// Payment (clause 2.5): 43% of the mix.
pub(super) fn payment(t: &Tpcc, rng: &mut TpccRng) -> TxnOutcome {
    let cfg = t.config;
    let w = rng.uniform(1, cfg.warehouses as u64) as u16;
    let d = rng.uniform(1, cfg.districts as u64) as u8;
    // 85% home customer, 15% remote (clause 2.5.1.2).
    let (c_w, c_d) = if cfg.warehouses > 1 && rng.chance(15) {
        let mut o = rng.uniform(1, cfg.warehouses as u64) as u16;
        if o == w {
            o = o % cfg.warehouses + 1;
        }
        (o, rng.uniform(1, cfg.districts as u64) as u8)
    } else {
        (w, d)
    };
    let by_name = rng.chance(60);
    let name_idx = rng.last_name_index() % 1000;
    let c_id_direct = (rng.customer_id() % cfg.customers_per_district).max(1);
    let amount = rng.uniform_f64(1.0, 5_000.0);
    let date = t.now();
    let h_seq = t.next_history_seq();

    retry_loop(t, |txn| {
        let mut wrow = Warehouse::decode(
            &txn.read(&t.warehouse, &keys::warehouse(w))?
                .expect("warehouse"),
        );
        wrow.ytd += amount;
        let w_name = wrow.name.clone();
        txn.update(&t.warehouse, keys::warehouse(w), wrow.encode());

        let mut drow = District::decode(
            &txn.read(&t.district, &keys::district(w, d))?
                .expect("district"),
        );
        drow.ytd += amount;
        let d_name = drow.name.clone();
        txn.update(&t.district, keys::district(w, d), drow.encode());

        let Some((c_id, mut crow)) =
            select_customer(t, txn, by_name, name_idx, c_id_direct, c_w, c_d)?
        else {
            // No customer with that name at this scale: fall back to id.
            return Ok((0, true));
        };
        crow.balance -= amount;
        crow.ytd_payment += amount;
        crow.payment_cnt += 1;
        if crow.credit == "BC" {
            // Bad credit: prepend payment info to C_DATA, cap 500 chars.
            let mut data = format!("{c_id},{c_d},{c_w},{d},{w},{amount:.2}|{}", crow.data);
            data.truncate(500);
            crow.data = data;
        }
        txn.update(&t.customer, keys::customer(c_w, c_d, c_id), crow.encode());

        let h = History {
            c_id,
            c_d_id: c_d,
            c_w_id: c_w,
            d_id: d,
            w_id: w,
            date,
            amount,
            data: format!("{w_name}    {d_name}"),
        };
        txn.insert(&t.history, keys::history(w, d, h_seq), h.encode());
        Ok((5, false))
    })
}

/// OrderStatus (clause 2.6): 4% of the mix, read-only.
pub(super) fn order_status(t: &Tpcc, rng: &mut TpccRng) -> TxnOutcome {
    let cfg = t.config;
    let w = rng.uniform(1, cfg.warehouses as u64) as u16;
    let d = rng.uniform(1, cfg.districts as u64) as u8;
    let by_name = rng.chance(60);
    let name_idx = rng.last_name_index() % 1000;
    let c_id_direct = (rng.customer_id() % cfg.customers_per_district).max(1);

    retry_loop(t, |txn| {
        let Some((c_id, _crow)) = select_customer(t, txn, by_name, name_idx, c_id_direct, w, d)?
        else {
            return Ok((0, true));
        };
        // Most recent order of this customer.
        let (lo, hi) = keys::order_by_customer_range(w, d, c_id);
        let latest = txn.scan(&t.order_cust, &lo, &hi, 1, true)?;
        let mut rows = 2;
        if let Some((_, o_bytes)) = latest.first() {
            let o_id = u32::from_le_bytes(o_bytes[..4].try_into().expect("o_id"));
            let order = Order::decode(
                &txn.read(&t.order, &keys::order(w, d, o_id))?
                    .expect("order"),
            );
            let (ol_lo, ol_hi) = keys::order_line_range(w, d, o_id, o_id);
            let ols = txn.scan(&t.order_line, &ol_lo, &ol_hi, 20, false)?;
            debug_assert_eq!(ols.len(), order.ol_cnt as usize);
            rows += 1 + ols.len() as u32;
        }
        Ok((rows, false))
    })
}

/// Delivery (clause 2.7): 4% of the mix; processes every district.
pub(super) fn delivery(t: &Tpcc, rng: &mut TpccRng) -> TxnOutcome {
    let cfg = t.config;
    let w = rng.uniform(1, cfg.warehouses as u64) as u16;
    let carrier = rng.uniform(1, 10) as u8;
    let date = t.now();

    retry_loop(t, |txn| {
        let mut rows = 0;
        for d in 1..=cfg.districts {
            // Oldest undelivered order in this district.
            let (lo, hi) = (keys::new_order(w, d, 0), keys::new_order(w, d, u32::MAX));
            let oldest = txn.scan(&t.new_order, &lo, &hi, 1, false)?;
            let Some((no_key, no_bytes)) = oldest.into_iter().next() else {
                continue; // Nothing pending in this district.
            };
            let no = NewOrderRow::decode(&no_bytes);
            txn.delete(&t.new_order, no_key);

            let mut order = Order::decode(
                &txn.read(&t.order, &keys::order(w, d, no.o_id))?
                    .expect("order"),
            );
            order.carrier_id = carrier;
            let c_id = order.c_id;
            txn.update(&t.order, keys::order(w, d, no.o_id), order.encode());

            let (ol_lo, ol_hi) = keys::order_line_range(w, d, no.o_id, no.o_id);
            let ols = txn.scan(&t.order_line, &ol_lo, &ol_hi, 20, false)?;
            let mut amount_sum = 0.0;
            for (k, v) in ols {
                let mut ol = OrderLine::decode(&v);
                amount_sum += ol.amount;
                ol.delivery_d = date;
                txn.update(&t.order_line, k, ol.encode());
                rows += 1;
            }

            let mut crow = Customer::decode(
                &txn.read(&t.customer, &keys::customer(w, d, c_id))?
                    .expect("customer"),
            );
            crow.balance += amount_sum;
            crow.delivery_cnt += 1;
            txn.update(&t.customer, keys::customer(w, d, c_id), crow.encode());
            rows += 4;
        }
        Ok((rows, false))
    })
}

/// StockLevel (clause 2.8): 4% of the mix, read-only, large scan.
pub(super) fn stock_level(t: &Tpcc, rng: &mut TpccRng) -> TxnOutcome {
    let cfg = t.config;
    let w = rng.uniform(1, cfg.warehouses as u64) as u16;
    let d = rng.uniform(1, cfg.districts as u64) as u8;
    let threshold = rng.uniform(10, 20) as i32;

    retry_loop(t, |txn| {
        let drow = District::decode(
            &txn.read(&t.district, &keys::district(w, d))?
                .expect("district"),
        );
        let next = drow.next_o_id;
        let lo_order = next.saturating_sub(20).max(1);
        let (ol_lo, ol_hi) = keys::order_line_range(w, d, lo_order, next.saturating_sub(1));
        let ols = txn.scan(&t.order_line, &ol_lo, &ol_hi, 400, false)?;
        let mut item_ids: Vec<u32> = ols.iter().map(|(_, v)| OrderLine::decode(v).i_id).collect();
        item_ids.sort_unstable();
        item_ids.dedup();
        let mut low = 0u32;
        let rows = 1 + ols.len() as u32 + item_ids.len() as u32;
        for i_id in item_ids {
            let stock = Stock::decode(&txn.read(&t.stock, &keys::stock(w, i_id))?.expect("stock"));
            if stock.quantity < threshold {
                low += 1;
            }
        }
        let _ = low;
        Ok((rows, false))
    })
}

#[cfg(test)]
mod tests {
    use super::super::{Tpcc, TpccConfig, TxnType};
    use super::*;

    fn tiny() -> (Tpcc, TpccRng) {
        (Tpcc::load(TpccConfig::tiny()), TpccRng::new(123))
    }

    #[test]
    fn new_order_advances_district_counter() {
        let (t, mut rng) = tiny();
        let before = District::decode(
            &t.db
                .begin()
                .read(&t.district, &keys::district(1, 1))
                .unwrap()
                .unwrap(),
        )
        .next_o_id;
        // Run enough NewOrders that district 1 certainly got one.
        let mut committed = 0;
        for _ in 0..40 {
            if new_order(&t, &mut rng).committed {
                committed += 1;
            }
        }
        assert!(committed > 0);
        let after_d1 = District::decode(
            &t.db
                .begin()
                .read(&t.district, &keys::district(1, 1))
                .unwrap()
                .unwrap(),
        )
        .next_o_id;
        let after_d2 = District::decode(
            &t.db
                .begin()
                .read(&t.district, &keys::district(1, 2))
                .unwrap()
                .unwrap(),
        )
        .next_o_id;
        assert!(
            after_d1 + after_d2 >= before * 2 + committed,
            "district counters advanced by total committed orders"
        );
    }

    #[test]
    fn new_order_rollback_rate_near_one_percent() {
        let (t, mut rng) = tiny();
        let n = 2_000;
        let aborts = (0..n)
            .filter(|_| new_order(&t, &mut rng).user_aborted)
            .count();
        let rate = aborts as f64 / n as f64;
        assert!((0.002..0.03).contains(&rate), "rollback rate {rate}");
    }

    #[test]
    fn payment_moves_money() {
        let (t, mut rng) = tiny();
        let w_before = Warehouse::decode(
            &t.db
                .begin()
                .read(&t.warehouse, &keys::warehouse(1))
                .unwrap()
                .unwrap(),
        )
        .ytd;
        let mut paid = 0;
        for _ in 0..20 {
            if payment(&t, &mut rng).committed {
                paid += 1;
            }
        }
        assert!(paid > 0);
        let w_after = Warehouse::decode(
            &t.db
                .begin()
                .read(&t.warehouse, &keys::warehouse(1))
                .unwrap()
                .unwrap(),
        )
        .ytd;
        assert!(w_after > w_before, "warehouse YTD grew");
    }

    #[test]
    fn delivery_drains_new_orders() {
        let (t, mut rng) = tiny();
        let before = t.new_order.len();
        assert!(before > 0);
        let out = delivery(&t, &mut rng);
        assert!(out.committed);
        // Deletion marks records absent; a fresh scan finds fewer rows.
        let mut txn = t.db.begin();
        let (lo, hi) = (keys::new_order(1, 1, 0), keys::new_order(1, 1, u32::MAX));
        let left = txn
            .scan(&t.new_order, &lo, &hi, 1_000, false)
            .unwrap()
            .len();
        assert!(
            left < before,
            "district 1 pending dropped: {left} < {before}"
        );
    }

    #[test]
    fn order_status_reads_consistent_order() {
        let (t, mut rng) = tiny();
        for _ in 0..30 {
            let out = order_status(&t, &mut rng);
            assert!(out.committed || out.user_aborted);
        }
    }

    #[test]
    fn stock_level_touches_many_rows() {
        let (t, mut rng) = tiny();
        let out = stock_level(&t, &mut rng);
        assert!(out.committed);
        assert!(out.rows_touched > 20, "rows = {}", out.rows_touched);
    }

    #[test]
    fn service_times_are_multimodal() {
        // Delivery and StockLevel must be significantly heavier than
        // Payment — the root of Figure 10a's multimodality.
        let (t, mut rng) = tiny();
        // Few iterations: at tiny scale Delivery drains the NEW-ORDER
        // backlog quickly, shrinking its footprint.
        let avg_rows = |kind: TxnType, rng: &mut TpccRng, t: &Tpcc| {
            let mut total = 0u64;
            for _ in 0..5 {
                total += t.run(kind, rng).rows_touched as u64;
            }
            total / 5
        };
        let pay = avg_rows(TxnType::Payment, &mut rng, &t);
        let del = avg_rows(TxnType::Delivery, &mut rng, &t);
        let stk = avg_rows(TxnType::StockLevel, &mut rng, &t);
        assert!(del > 2 * pay, "delivery {del} vs payment {pay}");
        assert!(stk > 2 * pay, "stock-level {stk} vs payment {pay}");
    }
}
