//! Key encodings for the nine TPC-C tables.
//!
//! Every key begins with a 4-byte prefix `[w_id:u16 BE][d_id:u8][pad:0]`
//! that both (a) sorts rows of one district contiguously and (b) selects
//! the index shard (see `zygos_silo::table`): all TPC-C range scans are
//! within one (warehouse, district), so they never cross shards.
//! Order-significant integer components are big-endian.

/// Builds the 4-byte shard prefix.
fn prefix(w_id: u16, d_id: u8) -> [u8; 4] {
    let w = w_id.to_be_bytes();
    [w[0], w[1], d_id, 0]
}

/// warehouse — key: (w_id).
pub fn warehouse(w_id: u16) -> Vec<u8> {
    prefix(w_id, 0).to_vec()
}

/// district — key: (w_id, d_id).
pub fn district(w_id: u16, d_id: u8) -> Vec<u8> {
    prefix(w_id, d_id).to_vec()
}

/// customer — key: (w_id, d_id, c_id).
pub fn customer(w_id: u16, d_id: u8, c_id: u32) -> Vec<u8> {
    let mut k = prefix(w_id, d_id).to_vec();
    k.extend_from_slice(&c_id.to_be_bytes());
    k
}

/// customer-by-name index — key: (w_id, d_id, last_name padded to 16 bytes, c_id).
pub fn customer_name(w_id: u16, d_id: u8, last: &str, c_id: u32) -> Vec<u8> {
    let mut k = prefix(w_id, d_id).to_vec();
    let mut name = [0u8; 16];
    let bytes = last.as_bytes();
    name[..bytes.len().min(16)].copy_from_slice(&bytes[..bytes.len().min(16)]);
    k.extend_from_slice(&name);
    k.extend_from_slice(&c_id.to_be_bytes());
    k
}

/// Range covering every `customer_name` entry for one last name.
pub fn customer_name_range(w_id: u16, d_id: u8, last: &str) -> (Vec<u8>, Vec<u8>) {
    (
        customer_name(w_id, d_id, last, 0),
        customer_name(w_id, d_id, last, u32::MAX),
    )
}

/// history — key: (w_id, d_id, seq). TPC-C's history table has no primary
/// key; we append with a global sequence number.
pub fn history(w_id: u16, d_id: u8, seq: u64) -> Vec<u8> {
    let mut k = prefix(w_id, d_id).to_vec();
    k.extend_from_slice(&seq.to_be_bytes());
    k
}

/// new-order — key: (w_id, d_id, o_id); ascending scan finds the oldest.
pub fn new_order(w_id: u16, d_id: u8, o_id: u32) -> Vec<u8> {
    let mut k = prefix(w_id, d_id).to_vec();
    k.extend_from_slice(&o_id.to_be_bytes());
    k
}

/// oorder — key: (w_id, d_id, o_id).
pub fn order(w_id: u16, d_id: u8, o_id: u32) -> Vec<u8> {
    let mut k = prefix(w_id, d_id).to_vec();
    k.extend_from_slice(&o_id.to_be_bytes());
    k
}

/// order-by-customer index — key: (w_id, d_id, c_id, o_id); descending
/// scan finds a customer's most recent order (OrderStatus).
pub fn order_by_customer(w_id: u16, d_id: u8, c_id: u32, o_id: u32) -> Vec<u8> {
    let mut k = prefix(w_id, d_id).to_vec();
    k.extend_from_slice(&c_id.to_be_bytes());
    k.extend_from_slice(&o_id.to_be_bytes());
    k
}

/// Range covering all orders of one customer.
pub fn order_by_customer_range(w_id: u16, d_id: u8, c_id: u32) -> (Vec<u8>, Vec<u8>) {
    (
        order_by_customer(w_id, d_id, c_id, 0),
        order_by_customer(w_id, d_id, c_id, u32::MAX),
    )
}

/// order-line — key: (w_id, d_id, o_id, ol_number).
pub fn order_line(w_id: u16, d_id: u8, o_id: u32, ol_number: u8) -> Vec<u8> {
    let mut k = prefix(w_id, d_id).to_vec();
    k.extend_from_slice(&o_id.to_be_bytes());
    k.push(ol_number);
    k
}

/// Range covering all order lines of orders `[o_lo, o_hi]` in a district
/// (StockLevel scans the lines of the last 20 orders).
pub fn order_line_range(w_id: u16, d_id: u8, o_lo: u32, o_hi: u32) -> (Vec<u8>, Vec<u8>) {
    (
        order_line(w_id, d_id, o_lo, 0),
        order_line(w_id, d_id, o_hi, u8::MAX),
    )
}

/// item — key: (i_id). Items are warehouse-independent; the item table is
/// created with full-key sharding, so no prefix discipline is needed.
pub fn item(i_id: u32) -> Vec<u8> {
    i_id.to_be_bytes().to_vec()
}

/// stock — key: (w_id, i_id).
pub fn stock(w_id: u16, i_id: u32) -> Vec<u8> {
    let mut k = prefix(w_id, 0).to_vec();
    k.extend_from_slice(&i_id.to_be_bytes());
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_sort_by_component_order() {
        assert!(order(1, 1, 5) < order(1, 1, 6));
        assert!(order(1, 1, 255) < order(1, 1, 256), "big-endian ordering");
        assert!(order_line(1, 2, 7, 1) < order_line(1, 2, 7, 2));
        assert!(order_line(1, 2, 7, 15) < order_line(1, 2, 8, 1));
    }

    #[test]
    fn district_rows_share_prefix() {
        let a = new_order(3, 7, 1);
        let b = new_order(3, 7, 9_999);
        assert_eq!(a[..4], b[..4]);
        let c = new_order(3, 8, 1);
        assert_ne!(a[..4], c[..4]);
    }

    #[test]
    fn name_range_covers_exact_name_only() {
        let (lo, hi) = customer_name_range(1, 1, "SMITH");
        let inside = customer_name(1, 1, "SMITH", 42);
        let other = customer_name(1, 1, "SMITX", 42);
        assert!(lo <= inside && inside <= hi);
        assert!(!(lo <= other && other <= hi));
    }

    #[test]
    fn long_names_truncate_safely() {
        let k = customer_name(1, 1, "AVERYVERYLONGLASTNAME", 1);
        assert_eq!(k.len(), 4 + 16 + 4);
    }

    #[test]
    fn order_by_customer_range_brackets() {
        let (lo, hi) = order_by_customer_range(2, 3, 77);
        assert!(lo < order_by_customer(2, 3, 77, 1));
        assert!(
            order_by_customer(2, 3, 77, 1_000_000) < hi
                || order_by_customer(2, 3, 77, 1_000_000) == hi
        );
        assert!(!(lo <= order_by_customer(2, 3, 78, 0) && order_by_customer(2, 3, 78, 0) <= hi));
    }
}
