//! Sharded ordered indexes.
//!
//! Silo uses Masstree; we use `S` BTreeMap shards behind RwLocks, sharded
//! by a hash of the key's *prefix*. Range scans must therefore stay within
//! one shard — TPC-C guarantees this naturally because every scanned range
//! shares its (warehouse, district) key prefix, which is exactly the prefix
//! we shard on. Each shard carries a structure version, bumped on inserts,
//! which transactions use for coarse phantom detection (Silo's node-set
//! validation, at shard granularity).

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::record::Record;
use crate::tid::TidWord;

struct Shard {
    map: RwLock<BTreeMap<Vec<u8>, Arc<Record>>>,
    /// Bumped on every structural change (insert); scanned ranges validate
    /// against it at commit.
    version: AtomicU64,
}

struct TableInner {
    name: String,
    shards: Vec<Shard>,
    /// Number of leading key bytes that select the shard.
    prefix_len: usize,
}

/// A handle to a table; cheap to clone.
#[derive(Clone)]
pub struct Table(Arc<TableInner>);

/// Result of [`Table::scan`]: the matched `(key, record)` pairs, the shard
/// index scanned, and the shard's structure version observed before the
/// read (for commit-time phantom validation).
pub type ScanResult = (Vec<(Vec<u8>, Arc<Record>)>, usize, u64);

/// Result of [`Table::remove_if_absent`] (GC reclamation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The absent record's index entry was physically removed.
    Removed,
    /// A transaction still references the record; retry later.
    StillReferenced,
    /// The record is live (resurrected); drop the candidate.
    NotAbsent,
    /// No such key.
    Missing,
}

/// FNV-1a over the shard prefix.
fn prefix_hash(key: &[u8], prefix_len: usize) -> u64 {
    let p = &key[..key.len().min(prefix_len)];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in p {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Table {
    /// Creates a table with `shards` shards (rounded up to a power of two)
    /// sharded on the first `prefix_len` key bytes.
    pub fn new(name: impl Into<String>, shards: usize, prefix_len: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Table(Arc::new(TableInner {
            name: name.into(),
            shards: (0..n)
                .map(|_| Shard {
                    map: RwLock::new(BTreeMap::new()),
                    version: AtomicU64::new(0),
                })
                .collect(),
            prefix_len,
        }))
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// A stable identity for read-your-writes bookkeeping.
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    fn shard_idx(&self, key: &[u8]) -> usize {
        (prefix_hash(key, self.0.prefix_len) as usize) & (self.0.shards.len() - 1)
    }

    /// The shard index a key belongs to (exposed for scan-set validation).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.shard_idx(key)
    }

    /// Current structure version of a shard.
    pub fn shard_version(&self, shard: usize) -> u64 {
        self.0.shards[shard].version.load(Ordering::Acquire)
    }

    /// Looks up the record for `key`, if any (absent placeholders count).
    pub fn get(&self, key: &[u8]) -> Option<Arc<Record>> {
        let shard = &self.0.shards[self.shard_idx(key)];
        shard.map.read().get(key).cloned()
    }

    /// Returns the record for `key`, inserting an absent placeholder (and
    /// bumping the shard version) if none exists.
    ///
    /// The boolean is `true` if this call created the placeholder.
    pub fn get_or_insert_absent(&self, key: &[u8]) -> (Arc<Record>, bool) {
        let shard = &self.0.shards[self.shard_idx(key)];
        if let Some(rec) = shard.map.read().get(key) {
            return (Arc::clone(rec), false);
        }
        let mut map = shard.map.write();
        // Re-check under the write lock (another inserter may have won).
        if let Some(rec) = map.get(key) {
            return (Arc::clone(rec), false);
        }
        let rec = Arc::new(Record::absent(TidWord::ZERO));
        map.insert(key.to_vec(), Arc::clone(&rec));
        shard.version.fetch_add(1, Ordering::AcqRel);
        (rec, true)
    }

    /// Scans `[start, end]` in key order (ascending if `!rev`), visiting at
    /// most `limit` records, all within one shard.
    ///
    /// Returns the matched `(key, record)` pairs plus the shard index and
    /// the shard version observed *before* reading — the caller validates
    /// it at commit.
    ///
    /// # Panics
    ///
    /// Panics if `start` and `end` fall in different shards (the scanned
    /// range must share the shard prefix).
    pub fn scan(&self, start: &[u8], end: &[u8], limit: usize, rev: bool) -> ScanResult {
        let si = self.shard_idx(start);
        assert_eq!(
            si,
            self.shard_idx(end),
            "scan range must stay within one shard (shared key prefix)"
        );
        let shard = &self.0.shards[si];
        let version = shard.version.load(Ordering::Acquire);
        let map = shard.map.read();
        let range = map.range::<[u8], _>((Bound::Included(start), Bound::Included(end)));
        let out: Vec<(Vec<u8>, Arc<Record>)> = if rev {
            range
                .rev()
                .take(limit)
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        } else {
            range
                .take(limit)
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        (out, si, version)
    }

    /// Physically removes an absent record's index entry (GC only).
    ///
    /// Safety rule: removal happens under the shard's write lock *and* the
    /// record's TID lock, and only when the index holds the sole reference
    /// — no in-flight transaction can then be holding the record in a
    /// read/write set, and none can acquire it (lookups require the shard
    /// lock we hold). Removal bumps the shard version because it is a
    /// structural change.
    pub fn remove_if_absent(&self, key: &[u8]) -> RemoveOutcome {
        let shard = &self.0.shards[self.shard_idx(key)];
        let mut map = shard.map.write();
        let Some(rec) = map.get(key) else {
            return RemoveOutcome::Missing;
        };
        if std::sync::Arc::strong_count(rec) > 1 {
            return RemoveOutcome::StillReferenced;
        }
        if !rec.try_lock() {
            return RemoveOutcome::StillReferenced;
        }
        if rec.tid().unlocked().is_absent() {
            // Drop the record with its lock held: the map owned the only
            // reference, so nobody can observe the locked state.
            map.remove(key);
            shard.version.fetch_add(1, Ordering::AcqRel);
            RemoveOutcome::Removed
        } else {
            rec.unlock();
            RemoveOutcome::NotAbsent
        }
    }

    /// Number of keys currently indexed (present or absent), across shards.
    pub fn len(&self) -> usize {
        self.0.shards.iter().map(|s| s.map.read().len()).sum()
    }

    /// True if no keys are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn present(tid_seq: u64, data: &[u8]) -> Arc<Record> {
        Arc::new(Record::new(
            crate::tid::TidWord::new(0, tid_seq),
            data.to_vec(),
        ))
    }

    fn put(t: &Table, key: &[u8], data: &[u8]) {
        let (rec, _) = t.get_or_insert_absent(key);
        rec.lock();
        rec.install(crate::tid::TidWord::new(0, 1), Some(data.to_vec()));
        let _ = present(1, data); // Exercise the helper.
    }

    #[test]
    fn get_or_insert_is_idempotent() {
        let t = Table::new("t", 4, 4);
        let (a, created_a) = t.get_or_insert_absent(b"key1");
        let (b, created_b) = t.get_or_insert_absent(b"key1");
        assert!(created_a);
        assert!(!created_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn shard_version_bumps_on_insert_only() {
        let t = Table::new("t", 1, 4);
        let v0 = t.shard_version(0);
        t.get_or_insert_absent(b"aaaa1");
        let v1 = t.shard_version(0);
        assert_eq!(v1, v0 + 1);
        t.get_or_insert_absent(b"aaaa1"); // Existing key: no bump.
        assert_eq!(t.shard_version(0), v1);
    }

    #[test]
    fn scan_ascending_and_descending() {
        let t = Table::new("t", 1, 2);
        for i in 0..5u8 {
            put(&t, &[b'k', b'p', i], &[i]);
        }
        let (asc, _, _) = t.scan(&[b'k', b'p', 0], &[b'k', b'p', 4], 10, false);
        let keys: Vec<u8> = asc.iter().map(|(k, _)| k[2]).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        let (desc, _, _) = t.scan(&[b'k', b'p', 0], &[b'k', b'p', 4], 2, true);
        let keys: Vec<u8> = desc.iter().map(|(k, _)| k[2]).collect();
        assert_eq!(keys, vec![4, 3]);
    }

    #[test]
    fn scan_limit_applies() {
        let t = Table::new("t", 1, 2);
        for i in 0..10u8 {
            put(&t, &[b'a', b'b', i], &[i]);
        }
        let (hits, _, _) = t.scan(&[b'a', b'b', 0], &[b'a', b'b', 9], 3, false);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn scan_reports_version_for_phantom_detection() {
        let t = Table::new("t", 1, 2);
        put(&t, b"ab1", &[1]);
        let (_, shard, v) = t.scan(b"ab0", b"ab9", 10, false);
        t.get_or_insert_absent(b"ab2"); // Phantom!
        assert!(t.shard_version(shard) > v);
    }

    #[test]
    #[should_panic(expected = "one shard")]
    fn cross_shard_scan_rejected() {
        // With prefix sharding, keys with different prefixes (almost
        // certainly) hash to different shards.
        let t = Table::new("t", 64, 4);
        let (a, b) = (b"aaaa0000", b"zzzz9999");
        assert_ne!(t.shard_of(a), t.shard_of(b), "test assumes distinct shards");
        t.scan(a, b, 10, false);
    }

    #[test]
    fn keys_with_same_prefix_share_a_shard() {
        let t = Table::new("t", 64, 4);
        let s1 = t.shard_of(b"wh01-customer-1");
        let s2 = t.shard_of(b"wh01-customer-2");
        assert_eq!(s1, s2);
    }
}
