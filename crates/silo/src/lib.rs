//! A Silo-style in-memory transactional database (Tu et al., SOSP 2013).
//!
//! The paper evaluates ZygOS with "Silo, a state-of-the-art in-memory
//! transactional database prototype" running TPC-C (§6.3). Silo's C++
//! implementation is not usable from Rust, so this crate reimplements its
//! essential machinery from the Silo paper:
//!
//! * [`tid`] — 64-bit TID words: `[status | epoch | sequence]` with a lock
//!   bit, enabling optimistic record reads without shared-memory writes.
//! * [`record`] — versioned records: an atomic TID word plus the row bytes,
//!   read with a seqlock-style retry loop and written only while locked.
//! * [`table`] — sharded ordered indexes (BTree per shard) with per-shard
//!   structure versions for coarse phantom detection on range scans.
//! * [`txn`] — OCC transactions: read set, write set, and Silo's 3-phase
//!   commit (lock writes in canonical order → validate reads → install
//!   with a fresh TID in the current epoch).
//! * [`epoch`] — the epoch manager behind Silo's group commit. The paper
//!   disables Silo's GC for the evaluation; [`epoch::EpochManager`] makes
//!   that a switch.
//! * [`tpcc`] — the complete TPC-C workload: all nine tables, the
//!   standard-compliant loader, NURand parameter generation, and all five
//!   transactions in the standard mix (45/43/4/4/4).
//!
//! # Example
//!
//! ```
//! use zygos_silo::db::Database;
//!
//! let db = Database::new();
//! let accounts = db.create_table("accounts", 4);
//!
//! // Seed two accounts.
//! let mut setup = db.begin();
//! setup.insert(&accounts, b"alice".to_vec(), 100u64.to_le_bytes().to_vec());
//! setup.insert(&accounts, b"bob".to_vec(), 0u64.to_le_bytes().to_vec());
//! setup.commit().unwrap();
//!
//! // Transfer 40 from alice to bob, transactionally.
//! let mut t = db.begin();
//! let a = u64::from_le_bytes(t.read(&accounts, b"alice").unwrap().unwrap()[..8].try_into().unwrap());
//! let b = u64::from_le_bytes(t.read(&accounts, b"bob").unwrap().unwrap()[..8].try_into().unwrap());
//! t.update(&accounts, b"alice".to_vec(), (a - 40).to_le_bytes().to_vec());
//! t.update(&accounts, b"bob".to_vec(), (b + 40).to_le_bytes().to_vec());
//! t.commit().unwrap();
//! ```

pub mod db;
pub mod epoch;
pub mod gc;
pub mod record;
pub mod table;
pub mod tid;
pub mod tpcc;
pub mod txn;

pub use db::Database;
pub use epoch::EpochManager;
pub use tid::TidWord;
pub use txn::{CommitError, Transaction};
