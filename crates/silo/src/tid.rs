//! Transaction-ID words (Silo §4.1).
//!
//! Every record carries a 64-bit TID word combining the commit identity of
//! its last writer with status bits:
//!
//! ```text
//!  63            35 34            3  2       1        0
//! +----------------+----------------+--------+--------+--------+
//! | epoch (29 bits)| seq (32 bits)  | absent | latest | lock   |
//! +----------------+----------------+--------+--------+--------+
//! ```
//!
//! TIDs order totally within an epoch and across epochs; the lock bit
//! doubles as the record's write lock, set by phase 1 of the commit
//! protocol.

/// A decoded TID word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TidWord(pub u64);

const LOCK_BIT: u64 = 1;
const LATEST_BIT: u64 = 1 << 1;
const ABSENT_BIT: u64 = 1 << 2;
const STATUS_MASK: u64 = 0b111;
const SEQ_SHIFT: u32 = 3;
const SEQ_BITS: u32 = 32;
const SEQ_MASK: u64 = ((1u64 << SEQ_BITS) - 1) << SEQ_SHIFT;
const EPOCH_SHIFT: u32 = SEQ_SHIFT + SEQ_BITS;

impl TidWord {
    /// The zero TID: epoch 0, sequence 0, unlocked, latest, present.
    pub const ZERO: TidWord = TidWord(LATEST_BIT);

    /// Builds a TID from an epoch and sequence number.
    pub fn new(epoch: u64, seq: u64) -> TidWord {
        debug_assert!(epoch < (1 << 29), "epoch overflow");
        debug_assert!(seq < (1 << SEQ_BITS), "sequence overflow");
        TidWord((epoch << EPOCH_SHIFT) | (seq << SEQ_SHIFT) | LATEST_BIT)
    }

    /// The epoch component.
    pub fn epoch(self) -> u64 {
        self.0 >> EPOCH_SHIFT
    }

    /// The sequence component.
    pub fn seq(self) -> u64 {
        (self.0 & SEQ_MASK) >> SEQ_SHIFT
    }

    /// True if the lock bit is set.
    pub fn is_locked(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// True if the record is logically absent (deleted placeholder).
    pub fn is_absent(self) -> bool {
        self.0 & ABSENT_BIT != 0
    }

    /// Returns the word with the lock bit set.
    pub fn locked(self) -> TidWord {
        TidWord(self.0 | LOCK_BIT)
    }

    /// Returns the word with the lock bit clear.
    pub fn unlocked(self) -> TidWord {
        TidWord(self.0 & !LOCK_BIT)
    }

    /// Returns the word with the absent bit set/cleared.
    pub fn with_absent(self, absent: bool) -> TidWord {
        if absent {
            TidWord(self.0 | ABSENT_BIT)
        } else {
            TidWord(self.0 & !ABSENT_BIT)
        }
    }

    /// The commit identity (epoch, seq) ignoring status bits — what read
    /// validation compares.
    pub fn commit_id(self) -> u64 {
        self.0 & !STATUS_MASK
    }

    /// Next sequence number within the same epoch, wrapping into a new
    /// epoch is the caller's concern.
    pub fn next_seq(self) -> TidWord {
        TidWord::new(self.epoch(), self.seq() + 1).with_absent(self.is_absent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_epoch_seq() {
        let t = TidWord::new(123, 456_789);
        assert_eq!(t.epoch(), 123);
        assert_eq!(t.seq(), 456_789);
        assert!(!t.is_locked());
        assert!(!t.is_absent());
    }

    #[test]
    fn lock_bit_toggles() {
        let t = TidWord::new(1, 1);
        let l = t.locked();
        assert!(l.is_locked());
        assert_eq!(l.unlocked(), t);
        // Commit identity is unaffected by status bits.
        assert_eq!(l.commit_id(), t.commit_id());
    }

    #[test]
    fn absent_bit() {
        let t = TidWord::new(2, 3).with_absent(true);
        assert!(t.is_absent());
        assert!(!t.with_absent(false).is_absent());
    }

    #[test]
    fn tids_order_across_epochs() {
        let a = TidWord::new(1, u32::MAX as u64);
        let b = TidWord::new(2, 0);
        assert!(b.commit_id() > a.commit_id());
    }

    #[test]
    fn next_seq_increments() {
        let t = TidWord::new(5, 10);
        let n = t.next_seq();
        assert_eq!(n.epoch(), 5);
        assert_eq!(n.seq(), 11);
    }
}
