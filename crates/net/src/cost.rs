//! The calibrated cost model.
//!
//! The system simulator charges these per-operation costs instead of
//! executing a real NIC/TCP stack. Values are calibrated **once** against
//! the efficiencies the paper reports (see the Fig 3 row of
//! `docs/FIGURES.md`, whose regression meaning is exactly this
//! calibration) and then shared by
//! every experiment — they are not tuned per figure:
//!
//! * IX reaches ~90% of the partitioned-FCFS bound at `S̄ = 25µs` (§3.4)
//!   → total IX dataplane overhead ≈ 1.9µs/request unbatched.
//! * Linux-partitioned reaches the same efficiency only at `S̄ ≈ 120µs`
//!   → total Linux overhead ≈ 11µs/request (syscalls, softirq, wakeups).
//! * Linux-floating pays an extra serialized dequeue (shared epoll set)
//!   ≈ 0.45µs inside a global critical section.
//! * ZygOS adds to the IX path: shuffle-queue operations, steal transfers,
//!   remote-syscall shipping and IPIs — and loses IX's TX batching because
//!   it transmits eagerly to avoid head-of-line blocking (§6.2).

/// Nanosecond costs for every primitive the system simulator models.
///
/// All fields are in nanoseconds of simulated CPU time (or latency, for
/// `ipi_delivery_ns` and `network_rtt_ns`).
///
/// The upstream version derived `serde::{Serialize, Deserialize}`; this
/// workspace builds in an offline container where serde is unresolvable,
/// so the derives are dropped rather than left behind an uncompilable
/// feature (see ROADMAP "Offline deps").
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Fixed cost of one driver poll that dequeues a batch from the NIC
    /// hardware ring (amortized over the batch).
    pub driver_batch_fixed_ns: u64,
    /// Per-packet driver + DMA-completion handling.
    pub driver_per_pkt_ns: u64,
    /// Per-packet TCP/IP receive processing (header parse, PCB lookup,
    /// reassembly bookkeeping).
    pub stack_rx_per_pkt_ns: u64,
    /// Generating an event condition and dispatching to the application.
    pub event_dispatch_ns: u64,
    /// Per-response TCP/IP transmit + NIC doorbell.
    pub stack_tx_per_msg_ns: u64,
    /// Per-syscall cost of the batched-syscall boundary crossing.
    pub syscall_batch_ns: u64,

    /// Shuffle-queue enqueue or dequeue by the home core (ZygOS only).
    pub shuffle_op_ns: u64,
    /// Extra cost of a *remote* shuffle-queue steal: cacheline transfers of
    /// the queue, the PCB and its event list (ZygOS only).
    pub steal_extra_ns: u64,
    /// Enqueueing one remote batched syscall + home-core dequeue (ZygOS).
    pub remote_syscall_ns: u64,
    /// Latency from IPI send until the target core's handler starts.
    pub ipi_delivery_ns: u64,
    /// CPU time consumed by the IPI handler itself (replenish shuffle queue,
    /// flush remote syscalls / TX).
    pub ipi_handler_ns: u64,
    /// Context save + restore cost charged per preemptive-quantum expiry:
    /// the timer interrupt, saving the interrupted request's register/stack
    /// state, and restoring the dispatcher. Shinjuku (NSDI'19) reports
    /// 0.1–1µs for this path depending on whether the interposed ring-3
    /// trampoline or a full kernel exit is used; the default sits mid-band.
    /// Distinct from `ipi_handler_ns`, which prices the *work* an IPI
    /// handler performs (queue replenish / TX flush), not a state swap.
    pub ctx_save_restore_ns: u64,

    /// Per-request Linux kernel overhead: softirq RX, `epoll_wait`, `read`,
    /// `write`, wakeups. Applied instead of the dataplane costs above.
    pub linux_per_req_ns: u64,
    /// Serialized section of the Linux-floating shared-epoll dequeue (held
    /// while claiming a ready socket from the shared pool).
    pub linux_float_lock_ns: u64,

    /// Client↔server round-trip wire latency added to every request's
    /// end-to-end latency (switch + NIC + cabling; identical across
    /// systems).
    pub network_rtt_ns: u64,
}

impl CostModel {
    /// Costs for the IX dataplane model (run-to-completion, bounded
    /// batching). Unbatched per-request total ≈ 1.9µs.
    pub fn ix() -> Self {
        CostModel {
            driver_batch_fixed_ns: 500,
            driver_per_pkt_ns: 120,
            stack_rx_per_pkt_ns: 450,
            event_dispatch_ns: 150,
            stack_tx_per_msg_ns: 550,
            syscall_batch_ns: 130,
            // ZygOS-only machinery unused by IX.
            shuffle_op_ns: 0,
            steal_extra_ns: 0,
            remote_syscall_ns: 0,
            ipi_delivery_ns: 0,
            ipi_handler_ns: 0,
            ctx_save_restore_ns: 0,
            linux_per_req_ns: 0,
            linux_float_lock_ns: 0,
            network_rtt_ns: 4_000,
        }
    }

    /// Costs for the ZygOS model: the IX fast path plus the shuffle layer.
    pub fn zygos() -> Self {
        CostModel {
            shuffle_op_ns: 120,
            steal_extra_ns: 350,
            remote_syscall_ns: 250,
            ipi_delivery_ns: 1_200,
            ipi_handler_ns: 500,
            ctx_save_restore_ns: 400,
            ..CostModel::ix()
        }
    }

    /// Costs for the Linux baselines (partitioned and floating epoll).
    pub fn linux() -> Self {
        CostModel {
            driver_batch_fixed_ns: 0,
            driver_per_pkt_ns: 0,
            stack_rx_per_pkt_ns: 0,
            event_dispatch_ns: 0,
            stack_tx_per_msg_ns: 0,
            syscall_batch_ns: 0,
            shuffle_op_ns: 0,
            steal_extra_ns: 0,
            remote_syscall_ns: 0,
            ipi_delivery_ns: 0,
            ipi_handler_ns: 0,
            ctx_save_restore_ns: 0,
            linux_per_req_ns: 11_000,
            linux_float_lock_ns: 450,
            network_rtt_ns: 4_000,
        }
    }

    /// Total per-request cost of the IX RX→app→TX path with batch size `b`
    /// (the driver's fixed poll cost amortizes over the batch).
    pub fn ix_per_request_ns(&self, b: u64) -> u64 {
        let b = b.max(1);
        self.driver_batch_fixed_ns / b
            + self.driver_per_pkt_ns
            + self.stack_rx_per_pkt_ns
            + self.event_dispatch_ns
            + self.syscall_batch_ns
            + self.stack_tx_per_msg_ns
    }

    /// Total per-request cost of the ZygOS home-core path with no stealing
    /// and RX batch size `b`.
    pub fn zygos_home_per_request_ns(&self, b: u64) -> u64 {
        // Two shuffle ops: producer enqueue + consumer dequeue.
        self.ix_per_request_ns(b) + 2 * self.shuffle_op_ns
    }

    /// Extra cost a stolen request adds over the home-core path (steal
    /// transfer + shipping its syscalls home).
    pub fn zygos_steal_extra_ns(&self) -> u64 {
        self.steal_extra_ns + self.remote_syscall_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::zygos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ix_unbatched_near_two_micros() {
        let c = CostModel::ix();
        let per_req = c.ix_per_request_ns(1);
        assert!(
            (1_500..2_500).contains(&per_req),
            "IX per-request = {per_req}ns"
        );
    }

    #[test]
    fn batching_amortizes_fixed_cost() {
        let c = CostModel::ix();
        let b1 = c.ix_per_request_ns(1);
        let b64 = c.ix_per_request_ns(64);
        assert!(b64 < b1);
        assert_eq!(
            b1 - b64,
            c.driver_batch_fixed_ns - c.driver_batch_fixed_ns / 64
        );
    }

    #[test]
    fn zygos_costs_slightly_exceed_ix() {
        let z = CostModel::zygos();
        let extra = z.zygos_home_per_request_ns(1) - z.ix_per_request_ns(1);
        assert_eq!(extra, 240, "two shuffle ops at 120ns");
        assert!(z.zygos_steal_extra_ns() > 0);
    }

    #[test]
    fn linux_overhead_dominates_dataplane() {
        let l = CostModel::linux();
        let ix = CostModel::ix();
        assert!(l.linux_per_req_ns > 5 * ix.ix_per_request_ns(1));
    }

    #[test]
    fn calibration_matches_paper_efficiency_targets() {
        // IX ≈90% efficient at 25µs: S/(S+o) with o = unbatched per-request.
        let ix = CostModel::ix();
        let eff = 25_000.0 / (25_000.0 + ix.ix_per_request_ns(1) as f64);
        assert!((0.88..0.95).contains(&eff), "IX eff at 25us = {eff}");
        // Linux ≈90% efficient at 120µs.
        let l = CostModel::linux();
        let eff_l = 120_000.0 / (120_000.0 + l.linux_per_req_ns as f64);
        assert!(
            (0.88..0.95).contains(&eff_l),
            "Linux eff at 120us = {eff_l}"
        );
    }

    #[test]
    fn ctx_save_restore_within_shinjuku_band() {
        // Shinjuku reports 0.1–1µs per preemption for context save/restore;
        // the calibrated default must sit inside that band and stay
        // distinct from the IPI handler's work cost.
        let z = CostModel::zygos();
        assert!(
            (100..=1_000).contains(&z.ctx_save_restore_ns),
            "ctx = {}ns",
            z.ctx_save_restore_ns
        );
        assert_eq!(CostModel::ix().ctx_save_restore_ns, 0);
        assert_eq!(CostModel::linux().ctx_save_restore_ns, 0);
    }

    #[test]
    fn default_is_zygos() {
        let d = CostModel::default();
        assert_eq!(d.shuffle_op_ns, CostModel::zygos().shuffle_op_ns);
        assert_eq!(d.ipi_delivery_ns, 1_200);
    }
}
