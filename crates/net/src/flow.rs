//! Flow and connection identity.
//!
//! A *flow* is one direction of a TCP connection as the NIC sees it: a
//! five-tuple. RSS hashes the five-tuple to pick a hardware queue, which
//! makes every packet of a connection arrive at the same **home core** —
//! the invariant ZygOS's lower networking layer is built on (§4.2).

use std::fmt;

/// A dense connection identifier assigned at accept time.
///
/// The simulator and runtime index per-connection state (PCBs) by `ConnId`;
/// it is *not* the RSS hash — the RSS hash is derived from the five-tuple.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnId(pub u32);

impl ConnId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// An IPv4/TCP five-tuple, the input to RSS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FiveTuple {
    /// Source IPv4 address (client side).
    pub src_ip: u32,
    /// Destination IPv4 address (server side).
    pub dst_ip: u32,
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
    /// IP protocol number; 6 for TCP.
    pub proto: u8,
}

impl FiveTuple {
    /// A TCP five-tuple.
    pub fn tcp(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: 6,
        }
    }

    /// Synthesizes the five-tuple the test cluster would produce for client
    /// connection `i`: 11 client machines × ephemeral ports, one server.
    ///
    /// Mirrors the paper's setup of 2752 connections from 11 machines
    /// (§3.2); connection `i` originates from machine `i % 11`.
    pub fn synthetic(i: u32) -> Self {
        let machine = i % 11;
        FiveTuple::tcp(
            0x0A00_0001 + machine, // 10.0.0.{1..11}
            49_152 + (i / 11) as u16,
            0x0A00_0064, // Server at 10.0.0.100.
            7_777,
        )
    }

    /// Serializes the fields in the canonical RSS input order:
    /// `src_ip, dst_ip, src_port, dst_port` (big-endian), 12 bytes.
    pub fn rss_bytes(&self) -> [u8; 12] {
        let mut b = [0u8; 12];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tuples_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..2752 {
            assert!(seen.insert(FiveTuple::synthetic(i)), "dup at {i}");
        }
    }

    #[test]
    fn synthetic_spreads_over_machines() {
        let ips: std::collections::HashSet<u32> =
            (0..2752).map(|i| FiveTuple::synthetic(i).src_ip).collect();
        assert_eq!(ips.len(), 11);
    }

    #[test]
    fn rss_bytes_layout() {
        let t = FiveTuple::tcp(0x0102_0304, 0x1122, 0x0506_0708, 0x3344);
        let b = t.rss_bytes();
        assert_eq!(&b[0..4], &[1, 2, 3, 4]);
        assert_eq!(&b[4..8], &[5, 6, 7, 8]);
        assert_eq!(&b[8..10], &[0x11, 0x22]);
        assert_eq!(&b[10..12], &[0x33, 0x44]);
    }

    #[test]
    fn conn_id_display() {
        assert_eq!(ConnId(7).to_string(), "conn#7");
        assert_eq!(ConnId(7).index(), 7);
    }
}
