//! Receive-side scaling (RSS).
//!
//! Multi-queue NICs hash each arriving packet's five-tuple with the Toeplitz
//! hash, then use the hash's low bits to index a (typically 128-entry)
//! indirection table whose entries name hardware queues. All packets of a
//! flow therefore land on one queue — and with one queue per core, on one
//! **home core**. This module implements both pieces faithfully (Microsoft
//! RSS specification; verified against the published test vectors).

use crate::flow::FiveTuple;

/// The default 40-byte RSS secret key used by many drivers (and the
/// Microsoft RSS verification suite).
pub const DEFAULT_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Number of indirection-table entries (82599 uses 128).
pub const RETA_SIZE: usize = 128;

/// Computes the Toeplitz hash of `input` under `key`.
///
/// For each set bit of the input (MSB first), XOR in the 32-bit window of
/// the key starting at that bit position.
pub fn toeplitz_hash(key: &[u8; 40], input: &[u8]) -> u32 {
    assert!(input.len() <= 36, "input longer than key window allows");
    let mut result: u32 = 0;
    // The 32-bit window starting at bit 0 of the key.
    let mut window: u32 = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    for (byte_idx, &byte) in input.iter().enumerate() {
        for bit in 0..8 {
            if byte & (0x80 >> bit) != 0 {
                result ^= window;
            }
            // Slide the window one bit: shift left and pull in the next key
            // bit.
            let next_bit_index = (byte_idx * 8) + bit + 32;
            let next_bit = (key[next_bit_index / 8] >> (7 - (next_bit_index % 8))) & 1;
            window = (window << 1) | next_bit as u32;
        }
    }
    result
}

/// An RSS engine: Toeplitz key plus indirection table.
#[derive(Clone)]
pub struct Rss {
    key: [u8; 40],
    /// Indirection table: hash LSBs → queue index.
    reta: [u16; RETA_SIZE],
    queues: usize,
}

impl Rss {
    /// Creates an RSS engine distributing over `queues` hardware queues with
    /// the default key and a round-robin indirection table (the driver
    /// default).
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0` or `queues > u16::MAX as usize`.
    pub fn new(queues: usize) -> Self {
        assert!(queues > 0 && queues <= u16::MAX as usize);
        let mut reta = [0u16; RETA_SIZE];
        for (i, slot) in reta.iter_mut().enumerate() {
            *slot = (i % queues) as u16;
        }
        Rss {
            key: DEFAULT_RSS_KEY,
            reta,
            queues,
        }
    }

    /// Number of queues configured.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// The RSS hash of a five-tuple.
    pub fn hash(&self, t: &FiveTuple) -> u32 {
        toeplitz_hash(&self.key, &t.rss_bytes())
    }

    /// Maps a five-tuple to its hardware queue (home core).
    pub fn queue_for(&self, t: &FiveTuple) -> usize {
        let h = self.hash(t);
        self.reta[(h as usize) & (RETA_SIZE - 1)] as usize
    }

    /// Rewrites one indirection-table entry (the IX control plane reprograms
    /// RETA entries to migrate flow groups between cores; §5).
    ///
    /// # Panics
    ///
    /// Panics if `entry ≥ 128` or `queue ≥ self.queues()`.
    pub fn set_reta(&mut self, entry: usize, queue: usize) {
        assert!(entry < RETA_SIZE);
        assert!(queue < self.queues);
        self.reta[entry] = queue as u16;
    }

    /// The flow-group (indirection-table entry) of a five-tuple.
    pub fn flow_group(&self, t: &FiveTuple) -> usize {
        (self.hash(t) as usize) & (RETA_SIZE - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Microsoft RSS verification vectors (IPv4 with TCP ports).
    ///
    /// Input: src 66.9.149.187:2794 → dst 161.142.100.80:1766, expected hash
    /// 0x51ccc178, plus two more published vectors.
    #[test]
    fn microsoft_test_vectors() {
        let cases = [
            // (src ip, src port, dst ip, dst port, expected hash)
            (
                (66u8, 9u8, 149u8, 187u8),
                2794u16,
                (161u8, 142u8, 100u8, 80u8),
                1766u16,
                0x51cc_c178u32,
            ),
            (
                (199, 92, 111, 2),
                14230,
                (65, 69, 140, 83),
                4739,
                0xc626_b0ea,
            ),
            (
                (24, 19, 198, 95),
                12898,
                (12, 22, 207, 184),
                38024,
                0x5c2b_394a,
            ),
        ];
        for (src, sport, dst, dport, expect) in cases {
            let t = FiveTuple::tcp(
                u32::from_be_bytes([src.0, src.1, src.2, src.3]),
                sport,
                u32::from_be_bytes([dst.0, dst.1, dst.2, dst.3]),
                dport,
            );
            let h = toeplitz_hash(&DEFAULT_RSS_KEY, &t.rss_bytes());
            assert_eq!(h, expect, "hash mismatch for {t:?}");
        }
    }

    #[test]
    fn queue_mapping_is_stable() {
        let rss = Rss::new(16);
        let t = FiveTuple::synthetic(17);
        let q = rss.queue_for(&t);
        for _ in 0..10 {
            assert_eq!(rss.queue_for(&t), q);
        }
        assert!(q < 16);
    }

    #[test]
    fn connections_spread_roughly_evenly() {
        // 2752 synthetic connections over 16 queues: expect ~172 each.
        let rss = Rss::new(16);
        let mut counts = [0u32; 16];
        for i in 0..2752 {
            counts[rss.queue_for(&FiveTuple::synthetic(i))] += 1;
        }
        for (q, &c) in counts.iter().enumerate() {
            assert!(
                (100..260).contains(&c),
                "queue {q} got {c} connections: {counts:?}"
            );
        }
    }

    #[test]
    fn reta_rewrite_migrates_flow_group() {
        let mut rss = Rss::new(16);
        let t = FiveTuple::synthetic(3);
        let group = rss.flow_group(&t);
        rss.set_reta(group, 5);
        assert_eq!(rss.queue_for(&t), 5);
    }

    #[test]
    #[should_panic]
    fn reta_bounds_checked() {
        let mut rss = Rss::new(4);
        rss.set_reta(0, 4);
    }

    #[test]
    fn single_queue_maps_everything_to_zero() {
        let rss = Rss::new(1);
        for i in 0..64 {
            assert_eq!(rss.queue_for(&FiveTuple::synthetic(i)), 0);
        }
    }
}
