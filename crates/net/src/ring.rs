//! Fixed-capacity descriptor rings.
//!
//! [`SpscRing`] models a NIC hardware descriptor ring: a single producer
//! (the NIC / client port) and a single consumer (the home core's driver
//! loop). Other cores never dequeue from a foreign ring, but ZygOS's idle
//! loop *does* poll foreign ring heads for occupancy before sending an IPI
//! (§5, steps (c)–(d)); [`SpscRing::occupancy`] supports exactly that —
//! a racy-but-safe read usable from any thread.
//!
//! [`MpscRing`] is the remote-batched-syscall channel: many stealing cores
//! produce, the home core consumes (§4.2 step (b)). It is built on
//! `crossbeam`'s proven MPMC `ArrayQueue` restricted to one consumer.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::queue::ArrayQueue;
use crossbeam::utils::CachePadded;

/// A bounded lock-free single-producer / single-consumer ring.
///
/// Capacity is rounded up to a power of two. `push` fails when full (the
/// NIC drops packets when a ring overflows — the paper's systems size rings
/// so this does not happen at the offered loads).
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to write (owned by the producer; read by consumers and
    /// occupancy probes).
    tail: CachePadded<AtomicUsize>,
    /// Next slot to read (owned by the consumer; read by the producer and
    /// occupancy probes).
    head: CachePadded<AtomicUsize>,
}

// SAFETY: The ring transfers `T` values between threads by value; with one
// producer and one consumer, each slot is accessed exclusively between the
// acquire/release pairs on `head`/`tail`. Requiring `T: Send` is therefore
// sufficient for the ring to be shared.
unsafe impl<T: Send> Send for SpscRing<T> {}
// SAFETY: See above — all shared-slot access is serialized by the
// head/tail protocol; `&SpscRing` only exposes `push` to the single
// producer and `pop` to the single consumer (enforced by protocol, checked
// in debug builds by the occupancy arithmetic).
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Creates a ring holding at least `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let cap = capacity.next_power_of_two();
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            buf,
            mask: cap - 1,
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Usable capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to enqueue; returns `Err(value)` when the ring is full.
    ///
    /// Must only be called by the single producer.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.buf.len() {
            return Err(value);
        }
        // SAFETY: `tail - head < capacity`, so slot `tail & mask` is not
        // visible to the consumer (it only reads slots below `tail`), and no
        // other producer exists. Writing MaybeUninit through the UnsafeCell
        // is therefore exclusive.
        unsafe {
            (*self.buf[tail & self.mask].get()).write(value);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Attempts to dequeue; returns `None` when the ring is empty.
    ///
    /// Must only be called by the single consumer.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so the producer has fully initialized slot
        // `head & mask` (release store on `tail` ordered after the write),
        // and no other consumer exists. Reading the value out transfers
        // ownership; the slot is then dead until the producer reuses it.
        let value = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Racy occupancy estimate, callable from any thread.
    ///
    /// This is the "poll the head of a remote NIC descriptor ring" read of
    /// the ZygOS idle loop. The value may be stale by the time the caller
    /// acts on it — the paper tolerates exactly this (IPIs are hints).
    pub fn occupancy(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.buf.len())
    }

    /// True if the ring currently appears empty (racy, any thread).
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drain remaining initialized slots so their destructors run.
        while self.pop().is_some() {}
    }
}

/// A bounded multi-producer / single-consumer ring (remote syscall channel).
pub struct MpscRing<T> {
    q: ArrayQueue<T>,
}

impl<T> MpscRing<T> {
    /// Creates a ring with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        MpscRing {
            q: ArrayQueue::new(capacity),
        }
    }

    /// Attempts to enqueue from any thread; `Err(value)` when full.
    pub fn push(&self, value: T) -> Result<(), T> {
        self.q.push(value)
    }

    /// Dequeues one element (home core only by convention).
    pub fn pop(&self) -> Option<T> {
        self.q.pop()
    }

    /// Current length (racy).
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when empty (racy).
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spsc_fifo_order() {
        let r = SpscRing::with_capacity(8);
        for i in 0..8 {
            r.push(i).unwrap();
        }
        assert!(r.push(99).is_err(), "ring must report full");
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let r = SpscRing::<u32>::with_capacity(5);
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    fn occupancy_tracks_push_pop() {
        let r = SpscRing::with_capacity(4);
        assert!(r.is_empty());
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.occupancy(), 2);
        r.pop().unwrap();
        assert_eq!(r.occupancy(), 1);
    }

    #[test]
    fn spsc_cross_thread_transfer() {
        let r = Arc::new(SpscRing::with_capacity(1024));
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                while pushed < 100_000 {
                    if r.push(pushed).is_ok() {
                        pushed += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut expected = 0u64;
        while expected < 100_000 {
            if let Some(v) = r.pop() {
                assert_eq!(v, expected, "FIFO order violated");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn drop_releases_remaining_elements() {
        // Box drops would leak (under Miri / asan) if Drop didn't drain.
        let r = SpscRing::with_capacity(4);
        r.push(Box::new(1u32)).unwrap();
        r.push(Box::new(2u32)).unwrap();
        drop(r);
    }

    #[test]
    fn wraparound_many_times() {
        let r = SpscRing::with_capacity(4);
        for round in 0u64..1000 {
            r.push(round).unwrap();
            assert_eq!(r.pop(), Some(round));
        }
    }

    #[test]
    fn mpsc_many_producers() {
        let r = Arc::new(MpscRing::with_capacity(4096));
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let mut v = p * 1_000_000 + i;
                    loop {
                        match r.push(v) {
                            Ok(()) => break,
                            Err(back) => v = back,
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut per_producer = [0u64; 4];
        let mut count = 0;
        while let Some(v) = r.pop() {
            let p = (v / 1_000_000) as usize;
            let i = v % 1_000_000;
            // Per-producer FIFO: values from one producer arrive in order.
            assert_eq!(i, per_producer[p], "producer {p} out of order");
            per_producer[p] += 1;
            count += 1;
        }
        assert_eq!(count, 4000);
    }
}
