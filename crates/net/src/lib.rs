//! Network substrate for the ZygOS reproduction.
//!
//! The original system runs on Intel 82599 10GbE NICs driven by DPDK with
//! an lwIP TCP/IP stack. Neither is available (or meaningful) in this
//! environment, so this crate provides the equivalent substrate the
//! scheduler actually interacts with:
//!
//! * [`flow`] — flows, five-tuples and connection identifiers.
//! * [`rss`] — receive-side scaling: a faithful Toeplitz hash plus the
//!   128-entry indirection table used to map flows to hardware queues.
//! * [`packet`] — packets and the RPC wire format used by all workloads
//!   (20-byte header: magic, opcode, request id, body length, and the
//!   credit grant servers piggyback on responses for sender-side
//!   admission control).
//! * [`ring`] — fixed-capacity descriptor rings: a lock-free SPSC ring (the
//!   NIC↔core interface) and an MPSC injection ring (clients → NIC).
//! * [`wire`] — byte-stream framing (the "TCP byte stream" of §6.2: the
//!   kernel does not know request boundaries until the framer finds them).
//! * [`tcp`] — a minimal TCP-like protocol control block: per-connection
//!   receive reassembly and transmit queue, as seen by the scheduler.
//! * [`cost`] — the calibrated cost model: every per-operation overhead the
//!   system simulator charges, documented against the paper's reported
//!   efficiencies (the Fig 3 calibration targets in `docs/FIGURES.md`).

pub mod cost;
pub mod flow;
pub mod packet;
pub mod ring;
pub mod rss;
pub mod tcp;
pub mod wire;

pub use cost::CostModel;
pub use flow::{ConnId, FiveTuple};
pub use packet::{Packet, RpcHeader};
pub use ring::{MpscRing, SpscRing};
pub use rss::Rss;
