//! A minimal TCP-like protocol layer, as seen by the scheduler.
//!
//! The scheduler's contract with the transport (paper §4.2, layer 1) is:
//!
//! * RX: the per-core stack turns raw packets into *events* on a
//!   per-connection protocol control block ([`Pcb`]) — here, complete RPC
//!   messages reassembled by the framer.
//! * TX: responses are queued on the PCB and flushed by the **home core
//!   only** (remote/stolen executions ship their syscalls home), keeping
//!   the output path coherency-free.
//!
//! Congestion control, retransmission and SACK are irrelevant to the
//! scheduling questions the paper studies (loss-free datacenter fabric,
//! short messages) and are intentionally absent; `docs/ARCHITECTURE.md`
//! records this substitution in the host-split table.

use bytes::Bytes;

use crate::flow::{ConnId, FiveTuple};
use crate::packet::{FrameError, Packet, RpcMessage};
use crate::wire::Framer;

/// Per-connection transport state: the receive framer, transmit queue and
/// byte/message counters.
pub struct Pcb {
    /// Connection identity.
    pub conn: ConnId,
    /// The five-tuple (determines the RSS home core).
    pub tuple: FiveTuple,
    framer: Framer,
    tx: Vec<Bytes>,
    rx_bytes: u64,
    tx_bytes: u64,
    rx_msgs: u64,
    tx_msgs: u64,
}

impl Pcb {
    /// Creates a PCB for an accepted connection.
    pub fn new(conn: ConnId, tuple: FiveTuple) -> Self {
        Pcb {
            conn,
            tuple,
            framer: Framer::new(),
            tx: Vec::new(),
            rx_bytes: 0,
            tx_bytes: 0,
            rx_msgs: 0,
            tx_msgs: 0,
        }
    }

    /// RX path: ingests one packet's payload, returning the complete
    /// messages it unlocked (possibly zero, possibly several).
    pub fn receive(&mut self, pkt: &Packet) -> Result<Vec<RpcMessage>, FrameError> {
        debug_assert_eq!(pkt.conn, self.conn, "packet routed to wrong PCB");
        self.rx_bytes += pkt.len() as u64;
        self.framer.feed(&pkt.payload)?;
        let msgs = self.framer.drain()?;
        self.rx_msgs += msgs.len() as u64;
        Ok(msgs)
    }

    /// TX path: queues a response for transmission by the home core.
    pub fn send(&mut self, msg: &RpcMessage) {
        let wire = msg.to_bytes();
        self.tx_bytes += wire.len() as u64;
        self.tx_msgs += 1;
        self.tx.push(wire);
    }

    /// Flushes the transmit queue, returning the wire buffers in order.
    pub fn flush_tx(&mut self) -> Vec<Bytes> {
        std::mem::take(&mut self.tx)
    }

    /// Number of responses queued but not yet flushed.
    pub fn tx_pending(&self) -> usize {
        self.tx.len()
    }

    /// Lifetime counters: `(rx_bytes, tx_bytes, rx_msgs, tx_msgs)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.rx_bytes, self.tx_bytes, self.rx_msgs, self.tx_msgs)
    }
}

/// The connection table of one ZygOS instance: dense `ConnId → Pcb`.
#[derive(Default)]
pub struct ConnTable {
    pcbs: Vec<Pcb>,
}

impl ConnTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ConnTable::default()
    }

    /// Accepts a connection, assigning the next dense [`ConnId`].
    pub fn accept(&mut self, tuple: FiveTuple) -> ConnId {
        let id = ConnId(self.pcbs.len() as u32);
        self.pcbs.push(Pcb::new(id, tuple));
        id
    }

    /// Number of open connections.
    pub fn len(&self) -> usize {
        self.pcbs.len()
    }

    /// True if no connections are open.
    pub fn is_empty(&self) -> bool {
        self.pcbs.is_empty()
    }

    /// Looks up a PCB.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`ConnTable::accept`].
    pub fn pcb_mut(&mut self, id: ConnId) -> &mut Pcb {
        &mut self.pcbs[id.index()]
    }

    /// Shared lookup.
    pub fn pcb(&self, id: ConnId) -> &Pcb {
        &self.pcbs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RpcMessage;

    fn mk_table() -> (ConnTable, ConnId) {
        let mut t = ConnTable::new();
        let id = t.accept(FiveTuple::synthetic(0));
        (t, id)
    }

    #[test]
    fn accept_assigns_dense_ids() {
        let mut t = ConnTable::new();
        for i in 0..10 {
            assert_eq!(t.accept(FiveTuple::synthetic(i)), ConnId(i));
        }
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn rx_reassembles_across_packets() {
        let (mut t, id) = mk_table();
        let wire = RpcMessage::new(1, 42, Bytes::from_static(b"payload")).to_bytes();
        let (a, b) = wire.split_at(9);
        let p1 = Packet::new(id, Bytes::copy_from_slice(a));
        let p2 = Packet::new(id, Bytes::copy_from_slice(b));
        assert!(t.pcb_mut(id).receive(&p1).unwrap().is_empty());
        let msgs = t.pcb_mut(id).receive(&p2).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].header.req_id, 42);
    }

    #[test]
    fn tx_queue_flushes_in_order() {
        let (mut t, id) = mk_table();
        let pcb = t.pcb_mut(id);
        pcb.send(&RpcMessage::new(1, 1, Bytes::new()));
        pcb.send(&RpcMessage::new(1, 2, Bytes::new()));
        assert_eq!(pcb.tx_pending(), 2);
        let out = pcb.flush_tx();
        assert_eq!(out.len(), 2);
        assert_eq!(pcb.tx_pending(), 0);
        // req_id sits at offset 4..12 of the header.
        assert_eq!(u64::from_le_bytes(out[0][4..12].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(out[1][4..12].try_into().unwrap()), 2);
    }

    #[test]
    fn counters_accumulate() {
        let (mut t, id) = mk_table();
        let wire = RpcMessage::new(1, 7, Bytes::from_static(b"abc")).to_bytes();
        let n = wire.len() as u64;
        t.pcb_mut(id)
            .receive(&Packet::new(id, wire.clone()))
            .unwrap();
        t.pcb_mut(id).send(&RpcMessage::new(1, 7, Bytes::new()));
        let (rxb, txb, rxm, txm) = t.pcb(id).counters();
        assert_eq!(rxb, n);
        assert_eq!(rxm, 1);
        assert_eq!(txm, 1);
        assert!(txb >= 16);
    }
}
