//! Byte-stream framing.
//!
//! TCP delivers a byte stream; RPC boundaries are an application concept.
//! [`Framer`] incrementally reassembles [`RpcMessage`]s from arbitrarily
//! segmented input — a message may span packets, and one packet may carry
//! several messages (the §6.2 pipelining case: "up to four distinct
//! memcached requests can be pipelined onto the same connection").
//!
//! The frame layout (including the credit-grant field that carries
//! Breakwater-style sender-side admission grants on responses) is
//! documented in [`crate::packet`]; the framer is layout-agnostic beyond
//! the fixed header length and the `body_len` field.
//!
//! ```
//! use bytes::Bytes;
//! use zygos_net::packet::RpcMessage;
//! use zygos_net::wire::Framer;
//!
//! let wire = RpcMessage::new(1, 7, Bytes::from_static(b"hi")).to_bytes();
//! let mut f = Framer::new();
//! // Feed the frame in two arbitrary segments, like TCP would deliver it.
//! f.feed(&wire[..9]).unwrap();
//! assert!(f.next_message().unwrap().is_none()); // incomplete
//! f.feed(&wire[9..]).unwrap();
//! let msg = f.next_message().unwrap().unwrap();
//! assert_eq!(msg.header.req_id, 7);
//! assert_eq!(&msg.body[..], b"hi");
//! ```

use bytes::{Buf, Bytes, BytesMut};

use crate::packet::{FrameError, RpcHeader, RpcMessage, RPC_HEADER_LEN};

/// Incremental frame decoder for one connection's receive stream.
#[derive(Default)]
pub struct Framer {
    buf: BytesMut,
    /// Set once the stream desynchronizes; all further input is rejected.
    poisoned: bool,
}

impl Framer {
    /// Creates an empty framer.
    pub fn new() -> Self {
        Framer::default()
    }

    /// Appends received bytes to the reassembly buffer.
    ///
    /// Returns an error if the stream was previously poisoned by a framing
    /// error (callers should reset the connection).
    pub fn feed(&mut self, data: &[u8]) -> Result<(), FrameError> {
        if self.poisoned {
            return Err(FrameError::BadMagic { found: 0 });
        }
        self.buf.extend_from_slice(data);
        Ok(())
    }

    /// Attempts to extract the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed. A framing error
    /// poisons the framer.
    pub fn next_message(&mut self) -> Result<Option<RpcMessage>, FrameError> {
        if self.poisoned {
            return Err(FrameError::BadMagic { found: 0 });
        }
        if self.buf.len() < RPC_HEADER_LEN {
            return Ok(None);
        }
        // Peek the header without consuming, in case the body is short.
        let mut peek = &self.buf[..RPC_HEADER_LEN];
        let header = match RpcHeader::decode(&mut peek) {
            Ok(h) => h,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        let total = RPC_HEADER_LEN + header.body_len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        self.buf.advance(RPC_HEADER_LEN);
        let body: Bytes = self.buf.split_to(header.body_len as usize).freeze();
        Ok(Some(RpcMessage { header, body }))
    }

    /// Drains every currently complete message.
    pub fn drain(&mut self) -> Result<Vec<RpcMessage>, FrameError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }

    /// Bytes buffered awaiting a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// True once a framing error has been observed.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RPC_MAGIC;
    use bytes::BufMut;

    fn msg(req_id: u64, body: &'static [u8]) -> RpcMessage {
        RpcMessage::new(1, req_id, Bytes::from_static(body))
    }

    #[test]
    fn whole_message_in_one_feed() {
        let mut f = Framer::new();
        f.feed(&msg(1, b"abc").to_bytes()).unwrap();
        let got = f.next_message().unwrap().unwrap();
        assert_eq!(got.header.req_id, 1);
        assert_eq!(&got.body[..], b"abc");
        assert!(f.next_message().unwrap().is_none());
        assert_eq!(f.pending_bytes(), 0);
    }

    #[test]
    fn message_split_byte_by_byte() {
        let wire = msg(7, b"hello world").to_bytes();
        let mut f = Framer::new();
        for (i, b) in wire.iter().enumerate() {
            f.feed(std::slice::from_ref(b)).unwrap();
            let m = f.next_message().unwrap();
            if i + 1 < wire.len() {
                assert!(m.is_none(), "early message at byte {i}");
            } else {
                assert_eq!(m.unwrap().header.req_id, 7);
            }
        }
    }

    #[test]
    fn multiple_messages_in_one_packet() {
        // The pipelined-requests case of §6.2.
        let mut wire = BytesMut::new();
        for id in 0..4u64 {
            wire.extend_from_slice(&msg(id, b"x").to_bytes());
        }
        let mut f = Framer::new();
        f.feed(&wire).unwrap();
        let all = f.drain().unwrap();
        assert_eq!(all.len(), 4);
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.header.req_id, i as u64, "in-order reassembly");
        }
    }

    #[test]
    fn desync_poisons_the_stream() {
        let mut f = Framer::new();
        let mut junk = BytesMut::new();
        junk.put_u16_le(0xFFFF);
        junk.put_bytes(0, 20);
        f.feed(&junk).unwrap();
        assert!(f.next_message().is_err());
        assert!(f.is_poisoned());
        assert!(f.feed(b"more").is_err());
    }

    #[test]
    fn empty_body_messages() {
        let mut f = Framer::new();
        f.feed(&RpcMessage::new(2, 5, Bytes::new()).to_bytes())
            .unwrap();
        let m = f.next_message().unwrap().unwrap();
        assert_eq!(m.header.body_len, 0);
        assert!(m.body.is_empty());
    }

    #[test]
    fn interleaved_feed_and_drain() {
        let mut f = Framer::new();
        let w1 = msg(1, b"aaaa").to_bytes();
        let w2 = msg(2, b"bbbb").to_bytes();
        // Feed w1 plus half of w2.
        f.feed(&w1).unwrap();
        f.feed(&w2[..10]).unwrap();
        let batch1 = f.drain().unwrap();
        assert_eq!(batch1.len(), 1);
        f.feed(&w2[10..]).unwrap();
        let batch2 = f.drain().unwrap();
        assert_eq!(batch2.len(), 1);
        assert_eq!(batch2[0].header.req_id, 2);
    }

    #[test]
    fn magic_constant_is_zg() {
        assert_eq!(RPC_MAGIC.to_le_bytes(), [0x47, 0x5A]); // "GZ" little-endian.
    }
}
