//! Packets and the RPC wire format.
//!
//! Every workload in the repository (synthetic spinner, memcached-like KV,
//! Silo/TPC-C) speaks the same framed RPC format over a byte stream:
//!
//! ```text
//! +------------+------------+----------------+--------------+--------------+
//! | magic (2B) | opcode (2B)| request id (8B)| body len (4B)| credits (4B) |
//! +------------+------------+----------------+--------------+--------------+
//! | body (len bytes)...                                                    |
//! +------------------------------------------------------------------------+
//! ```
//!
//! All integers are little-endian. The header is 20 bytes.
//!
//! The **credits** field is the Breakwater-style sender-side credit grant,
//! piggybacked on responses: a server running credit-based admission sets
//! it to the number of send credits this reply returns to the client
//! (0 = the pool is full, stop sending; see
//! `zygos_sched::CreditGate::grant_for_response`). Requests, and servers
//! with admission off, carry 0; clients not participating in sender-side
//! credits ignore it. Keeping the grant in the fixed header — rather than
//! a separate control message — means credit distribution costs no extra
//! packets, which at µs scale is the difference between a control plane
//! and a tax.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::flow::ConnId;

/// Magic marker starting every RPC frame.
pub const RPC_MAGIC: u16 = 0x5A47; // "ZG"

/// Size of the fixed RPC header in bytes.
pub const RPC_HEADER_LEN: usize = 20;

/// Maximum body length accepted by the framer (1 MiB).
pub const MAX_BODY_LEN: usize = 1 << 20;

/// Errors produced when decoding an RPC header.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The magic field did not match [`RPC_MAGIC`] — stream desync.
    BadMagic { found: u16 },
    /// Body length exceeds [`MAX_BODY_LEN`].
    Oversized { len: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:#06x}"),
            FrameError::Oversized { len } => write!(f, "frame body too large: {len}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// The fixed RPC frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcHeader {
    /// Application-defined operation code.
    pub opcode: u16,
    /// Request identifier echoed in the response (client latency matching).
    pub req_id: u64,
    /// Length of the body that follows.
    pub body_len: u32,
    /// Credit grant piggybacked on responses (see module docs); 0 on
    /// requests and when admission control is off.
    pub credits: u32,
}

impl RpcHeader {
    /// Encodes the header (including magic) into `dst`.
    pub fn encode(&self, dst: &mut BytesMut) {
        dst.reserve(RPC_HEADER_LEN);
        dst.put_u16_le(RPC_MAGIC);
        dst.put_u16_le(self.opcode);
        dst.put_u64_le(self.req_id);
        dst.put_u32_le(self.body_len);
        dst.put_u32_le(self.credits);
    }

    /// Decodes a header from the first [`RPC_HEADER_LEN`] bytes of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` holds fewer than [`RPC_HEADER_LEN`] bytes.
    pub fn decode(src: &mut impl Buf) -> Result<RpcHeader, FrameError> {
        assert!(src.remaining() >= RPC_HEADER_LEN, "short header");
        let magic = src.get_u16_le();
        if magic != RPC_MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let opcode = src.get_u16_le();
        let req_id = src.get_u64_le();
        let body_len = src.get_u32_le();
        let credits = src.get_u32_le();
        if body_len as usize > MAX_BODY_LEN {
            return Err(FrameError::Oversized {
                len: body_len as usize,
            });
        }
        Ok(RpcHeader {
            opcode,
            req_id,
            body_len,
            credits,
        })
    }
}

/// A complete RPC message (header + body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcMessage {
    /// Decoded header.
    pub header: RpcHeader,
    /// Message body.
    pub body: Bytes,
}

impl RpcMessage {
    /// Builds a message, filling in `body_len` (no credit grant).
    pub fn new(opcode: u16, req_id: u64, body: Bytes) -> Self {
        RpcMessage {
            header: RpcHeader {
                opcode,
                req_id,
                body_len: body.len() as u32,
                credits: 0,
            },
            body,
        }
    }

    /// Sets the piggybacked credit grant (responses from servers running
    /// sender-side admission control).
    pub fn with_credits(mut self, credits: u32) -> Self {
        self.header.credits = credits;
        self
    }

    /// Serializes header + body into a single buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(RPC_HEADER_LEN + self.body.len());
        self.header.encode(&mut buf);
        buf.extend_from_slice(&self.body);
        buf.freeze()
    }

    /// Total wire length of the message.
    pub fn wire_len(&self) -> usize {
        RPC_HEADER_LEN + self.body.len()
    }
}

/// A raw packet as delivered by the (simulated) NIC: a segment of a
/// connection's byte stream.
///
/// The driver layer sees packets; only the per-connection framer reassembles
/// them into [`RpcMessage`]s — exactly the boundary-blindness that produces
/// ZygOS's implicit per-flow batching in §6.2.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Connection this segment belongs to.
    pub conn: ConnId,
    /// Payload bytes (a segment of the stream, not necessarily aligned to
    /// message boundaries).
    pub payload: Bytes,
}

impl Packet {
    /// Creates a packet.
    pub fn new(conn: ConnId, payload: Bytes) -> Self {
        Packet { conn, payload }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty (pure ACK in a real stack).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = RpcHeader {
            opcode: 7,
            req_id: 0xDEAD_BEEF_0123,
            body_len: 42,
            credits: 3,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), RPC_HEADER_LEN);
        let mut rd = buf.freeze();
        assert_eq!(RpcHeader::decode(&mut rd), Ok(h));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0x1234);
        buf.put_bytes(0, RPC_HEADER_LEN - 2);
        let mut rd = buf.freeze();
        assert_eq!(
            RpcHeader::decode(&mut rd),
            Err(FrameError::BadMagic { found: 0x1234 })
        );
    }

    #[test]
    fn oversized_rejected() {
        let h = RpcHeader {
            opcode: 0,
            req_id: 0,
            body_len: (MAX_BODY_LEN + 1) as u32,
            credits: 0,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut rd = buf.freeze();
        assert!(matches!(
            RpcHeader::decode(&mut rd),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn message_serialization() {
        let m = RpcMessage::new(3, 99, Bytes::from_static(b"hello"));
        assert_eq!(m.header.body_len, 5);
        let wire = m.to_bytes();
        assert_eq!(wire.len(), m.wire_len());
        assert_eq!(&wire[RPC_HEADER_LEN..], b"hello");
    }

    #[test]
    fn credit_grant_roundtrips_and_defaults_to_zero() {
        let plain = RpcMessage::new(1, 5, Bytes::new());
        assert_eq!(plain.header.credits, 0);
        let granted = RpcMessage::new(1, 5, Bytes::from_static(b"ok")).with_credits(2);
        let wire = granted.to_bytes();
        let mut rd = wire.clone();
        let h = RpcHeader::decode(&mut rd).unwrap();
        assert_eq!(h.credits, 2);
        assert_eq!(h.req_id, 5);
    }

    #[test]
    fn packet_basics() {
        let p = Packet::new(ConnId(1), Bytes::from_static(b"abc"));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(Packet::new(ConnId(1), Bytes::new()).is_empty());
    }
}
