//! Robustness: the framer and header decoder treat the network as
//! untrusted input — arbitrary bytes must produce errors, never panics.

use proptest::prelude::*;
use zygos_net::packet::{RpcHeader, RPC_HEADER_LEN};
use zygos_net::wire::Framer;

proptest! {
    /// Arbitrary byte soup through the framer: no panic, and once an error
    /// is reported the framer stays poisoned.
    #[test]
    fn framer_never_panics_on_garbage(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..32),
    ) {
        let mut f = Framer::new();
        let mut errored = false;
        for chunk in chunks {
            if f.feed(&chunk).is_err() {
                errored = true;
            }
            match f.drain() {
                Ok(_) => {}
                Err(_) => errored = true,
            }
            if errored {
                prop_assert!(f.is_poisoned());
            }
        }
    }

    /// Header decode on arbitrary (sufficiently long) bytes never panics.
    #[test]
    fn header_decode_total(bytes in proptest::collection::vec(any::<u8>(), RPC_HEADER_LEN..64)) {
        let mut buf = &bytes[..];
        let _ = RpcHeader::decode(&mut buf);
    }
}
