//! Full-system discrete-event simulation of the paper's testbed.
//!
//! A 16-core server behind a multi-queue NIC (real RSS mapping from
//! `zygos-net`), 2752 client connections, open-loop Poisson arrivals, and
//! four system models:
//!
//! * [`config::SystemKind::Zygos`] — the paper's system: per-core network
//!   stacks, shuffle queues with connection-granularity work stealing,
//!   remote batched syscalls, and IPIs ([`SystemKind::ZygosNoInterrupts`]
//!   disables the IPIs for the cooperative ablation).
//! * [`config::SystemKind::Ix`] — shared-nothing run-to-completion with
//!   adaptive bounded batching (`rx_batch` = the paper's `B`).
//! * [`config::SystemKind::LinuxPartitioned`] / [`SystemKind::LinuxFloating`]
//!   — the epoll baselines with Linux's per-request kernel cost.
//! * [`config::SystemKind::Elastic`] — ZygOS under the `zygos-sched`
//!   control plane: a periodic controller grants/revokes cores (by
//!   default the SLO-margin `SloController`, fed per-tenant classes via
//!   [`SysConfig::slo`]; [`config::AllocKind::Utilization`] selects the
//!   PR-1 `util + β·√util` rule), parked cores redirect their RSS queues
//!   and stop polling ([`SysOutput::avg_active_cores`] reports the
//!   grant), and a nonzero [`SysConfig::preemption_quantum_us`] arms
//!   Shinjuku-style quantum preemption: over-quantum application chunks
//!   are interrupted and their remainders continue from a background
//!   queue ordered FCFS-with-aging or SRPT
//!   ([`SysConfig::background_order`]). `fig12_elastic` sweeps both
//!   against the static systems.
//! * [`config::SystemKind::Staged`] — the staged service plane: a request
//!   as an explicit `net_poll → net_stack → app` pipeline with per-stage
//!   queues and disciplines (cFCFS / dFCFS / dFCFS+steal) and a
//!   [`staged::CoreLayout`] assigning core roles (unified run-to-completion
//!   vs dedicated net/app core splits); see [`staged`].
//!
//! Every model routes its queue-pick decisions through the shared
//! `zygos_sched::DispatchPolicy` ladder (the same objects the live
//! runtime's workers walk) — this crate owns mechanisms, not order. A
//! [`SysConfig::admission`] credit gate (Breakwater-style AIMD credits)
//! sheds arrivals at the server edge under overload; `fig13` sweeps
//! offered load past saturation to show the admitted tail staying within
//! 2× the SLO while ungated policies diverge.
//!
//! Why a simulator: the original evaluation needs a 16-hyperthread Xeon,
//! Intel 82599 NICs and an 11-machine client cluster. This environment has
//! one CPU. Every result in the paper is a function of the arrival process,
//! the service-time distribution, the per-operation costs and the
//! scheduling policy — all of which the simulator reproduces exactly and
//! deterministically (the paper itself validates its steal rates against a
//! discrete-event simulation of the shuffle queue, §6.1). The per-operation
//! costs come from the calibrated [`zygos_net::cost::CostModel`].
//!
//! # Example
//!
//! ```
//! use zygos_sysim::{SysConfig, SystemKind, run_system};
//! use zygos_sim::dist::ServiceDist;
//!
//! let mut cfg = SysConfig::paper(
//!     SystemKind::Zygos,
//!     ServiceDist::exponential_us(10.0),
//!     0.6,
//! );
//! cfg.requests = 5_000;
//! cfg.warmup = 1_000;
//! let out = run_system(&cfg);
//! assert!(out.p99_us() > 46.0); // At least the service-time p99.
//! assert!(out.steal_fraction() > 0.0); // Work stealing is active.
//! ```

mod arrivals;
pub mod config;
pub mod driver;
pub mod fleet;
mod ix;
mod linux;
pub mod staged;
pub mod tail;
mod zygos;

pub use config::{AdmissionMode, SysConfig, SysOutput, SystemKind, CREDIT_HEADROOM};
pub use driver::{
    latency_throughput_sweep, latency_throughput_sweep_cold, max_load_at_quantile_slo_counting,
    max_load_at_slo, max_load_at_slo_counting, run_system, run_system_chain, theory_central_p99_us,
    theory_max_load_at_slo, warmable, SweepPoint, WARM_MAX_LOAD,
};
pub use fleet::{
    run_fleet, run_fleet_threads, AdmissionTopology, FleetConfig, FleetOutput, FLEET_SEED_STRIDE,
};
pub use staged::{CoreLayout, QueueDiscipline, StageSpec, StagedConfig};
pub use tail::{run_restart, TailConfig, TailOutput};
pub use zygos::WarmState;
pub use zygos_load::route::RoutePolicy;
pub use zygos_load::source::ArrivalSpec;
// The telemetry vocabulary callers need to arm [`SysConfig::telemetry`]
// and to read [`SysOutput::telemetry`].
pub use zygos_telemetry::{SeriesKind, TelemetryConfig, TelemetryOut, TraceEvent, TraceKind};
