//! Experiment drivers: run one system, sweep load, or search max-load@SLO.
//!
//! These functions are the building blocks of every figure binary in
//! `zygos-bench`.

use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::{self, Policy, QueueConfig};

use crate::config::{SysConfig, SysOutput, SystemKind};
use crate::zygos::WarmState;
use crate::{ix, linux, staged, zygos};

/// Divisor on the cold warmup for a warm-started point: a spliced run
/// starts from a converged neighbor, so it only needs to re-equilibrate
/// across the load step, not converge from an empty system.
pub const WARM_WARMUP_DIV: u64 = 8;

/// Floor on warm re-equilibration completions (a small load step still
/// needs a few hundred completions to settle; capped at the cold warmup).
pub const WARM_WARMUP_MIN: u64 = 500;

/// Loads above this always run cold: past saturation the backlog diverges
/// with run length, so a spliced world's queue depth depends on how long
/// the previous point ran — not a state a measurement may inherit.
pub const WARM_MAX_LOAD: f64 = 0.98;

/// Re-equilibration completions for a warm-started run of `cfg`.
fn warm_warmup(cfg: &SysConfig) -> u64 {
    (cfg.warmup / WARM_WARMUP_DIV)
        .max(WARM_WARMUP_MIN)
        .min(cfg.warmup)
}

/// True when `cfg` can be warm-started: a checkpointable ZygOS-family
/// model with telemetry off (checkpoints drop the observer plane).
pub fn warmable(cfg: &SysConfig) -> bool {
    zygos::is_zygos_family(cfg) && cfg.telemetry.is_none()
}

/// Runs one system-simulation experiment.
pub fn run_system(cfg: &SysConfig) -> SysOutput {
    match cfg.system {
        SystemKind::Zygos | SystemKind::ZygosNoInterrupts | SystemKind::Elastic { .. } => {
            zygos::run(cfg)
        }
        SystemKind::Ix => ix::run(cfg),
        SystemKind::LinuxPartitioned | SystemKind::LinuxFloating => linux::run(cfg),
        SystemKind::Staged => staged::run(cfg),
    }
}

/// One point of a latency-vs-throughput sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Offered load (fraction of ideal saturation).
    pub load: f64,
    /// Measured throughput in MRPS.
    pub mrps: f64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: f64,
    /// Fraction of events executed by non-home cores (ZygOS only).
    pub steal_fraction: f64,
    /// IPIs delivered per measured request.
    pub ipis_per_req: f64,
    /// Time-averaged granted cores (== configured cores for static
    /// systems; lower when `SystemKind::Elastic` parks cores).
    pub avg_active_cores: f64,
    /// Fraction of arrivals shed by the credit gate (0 with admission
    /// off).
    pub shed_fraction: f64,
    /// Wire time (µs) burned by shed requests over the window: rejects
    /// that travelled to the server and back. Zero under client-side
    /// credit distribution, where creditless requests are never sent.
    pub wasted_wire_us: f64,
}

fn sweep_point(load: f64, out: &SysOutput) -> SweepPoint {
    SweepPoint {
        load,
        mrps: out.throughput_mrps(),
        p99_us: out.p99_us(),
        steal_fraction: out.steal_fraction(),
        ipis_per_req: if out.completed == 0 {
            0.0
        } else {
            out.ipis as f64 / out.completed as f64
        },
        avg_active_cores: out.avg_active_cores,
        shed_fraction: out.shed_fraction(),
        wasted_wire_us: out.wasted_wire_us(),
    }
}

/// Sweeps offered load and reports `(throughput, p99)` points — the raw
/// data behind Figures 6, 8, 9, 10b and 11.
///
/// ZygOS-family, telemetry-off sweeps **warm-start**: each point whose
/// load sits above its predecessor's (and below [`WARM_MAX_LOAD`]) is
/// spliced onto the previous point's converged checkpoint instead of
/// re-converging from an empty system, spending `warm_warmup` instead
/// of the full cold warmup. Other hosts, overload points, and descending
/// steps fall back to cold runs — see `docs/TAIL.md` for the policy.
pub fn latency_throughput_sweep(base: &SysConfig, loads: &[f64]) -> Vec<SweepPoint> {
    run_system_chain(base, loads)
        .iter()
        .zip(loads)
        .map(|(out, &load)| sweep_point(load, out))
        .collect()
}

/// Runs `loads` as one warm chain and returns the full [`SysOutput`] per
/// load — the raw form of [`latency_throughput_sweep`], for callers (the
/// lab runner) that reduce outputs to their own schema. Non-warmable
/// configs, overload points, and descending steps run cold; the chain
/// head is bit-identical to a cold run.
pub fn run_system_chain(base: &SysConfig, loads: &[f64]) -> Vec<SysOutput> {
    if !warmable(base) {
        let mut cfg = base.clone();
        return loads
            .iter()
            .map(|&load| {
                cfg.load = load;
                run_system(&cfg)
            })
            .collect();
    }
    let mut cfg = base.clone();
    let mut prev: Option<(f64, WarmState)> = None;
    loads
        .iter()
        .map(|&load| {
            cfg.load = load;
            let warm_from = prev
                .as_ref()
                .filter(|(pl, _)| *pl < load && *pl <= WARM_MAX_LOAD && load <= WARM_MAX_LOAD);
            let (out, state) = match warm_from {
                Some((_, w)) => zygos::run_warm(w, &cfg, warm_warmup(&cfg)),
                None => zygos::run_keep(&cfg),
            };
            prev = Some((load, state));
            out
        })
        .collect()
}

/// The pre-warm-start sweep: every grid point pays the full cold
/// convergence. Kept as the baseline side of the `sweep-warm` vs
/// `sweep-cold` benchmark pair and for callers that need fully
/// independent points.
pub fn latency_throughput_sweep_cold(base: &SysConfig, loads: &[f64]) -> Vec<SweepPoint> {
    let mut cfg = base.clone();
    loads
        .iter()
        .map(|&load| {
            cfg.load = load;
            let out = run_system(&cfg);
            sweep_point(load, &out)
        })
        .collect()
}

/// Finds the maximum load at which a system meets `p99 ≤ slo_us` —
/// the paper's Figures 3 and 7 metric.
///
/// `resolution` is the load grid (50 ⇒ 2% steps, the figures' visual
/// granularity).
///
/// Warmable configs reuse checkpoint prefixes across bisection probes:
/// each probe warm-starts from the converged world of the highest
/// already-probed load below it, so only the first probe pays the cold
/// warmup (previously *every* probe re-converged from an empty system —
/// the bisection ran the warmup `O(log resolution)` times).
pub fn max_load_at_slo(base: &SysConfig, slo_us: f64, resolution: usize) -> f64 {
    max_load_at_slo_counting(base, slo_us, resolution).0
}

/// As [`max_load_at_slo`], also reporting `(probes, cold_probes)` — the
/// probe-count pin for the checkpoint-prefix-reuse fix lives on this.
pub fn max_load_at_slo_counting(
    base: &SysConfig,
    slo_us: f64,
    resolution: usize,
) -> (f64, u32, u32) {
    max_load_at_quantile_slo_counting(base, 0.99, slo_us, resolution)
}

/// [`max_load_at_slo_counting`] generalized to any latency quantile —
/// the scenario plane's `[search]` block picks p50/p99/p999 here.
pub fn max_load_at_quantile_slo_counting(
    base: &SysConfig,
    quantile: f64,
    slo_us: f64,
    resolution: usize,
) -> (f64, u32, u32) {
    let mut cfg = base.clone();
    let mut probes = 0u32;
    let mut cold = 0u32;
    if !warmable(base) {
        let load = queueing::max_load_at_slo(
            |load| {
                probes += 1;
                cold += 1;
                cfg.load = load;
                run_system(&cfg).latency.quantile_us(quantile)
            },
            slo_us,
            resolution,
        );
        return (load, probes, cold);
    }
    let mut cache: Vec<(f64, WarmState)> = Vec::new();
    let load = queueing::max_load_at_slo(
        |load| {
            probes += 1;
            cfg.load = load;
            let warm_from = cache
                .iter()
                .filter(|(l, _)| *l < load && *l <= WARM_MAX_LOAD)
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("grid loads are finite"));
            let (out, state) = match warm_from {
                Some((_, w)) if load <= WARM_MAX_LOAD => {
                    zygos::run_warm(w, &cfg, warm_warmup(&cfg))
                }
                _ => {
                    cold += 1;
                    zygos::run_keep(&cfg)
                }
            };
            cache.push((load, state));
            out.latency.quantile_us(quantile)
        },
        slo_us,
        resolution,
    );
    (load, probes, cold)
}

/// p99 of the zero-overhead **centralized** FCFS bound (M/G/n/FCFS) at a
/// given load, including the wire RTT — the grey theory curves.
pub fn theory_central_p99_us(
    service: &ServiceDist,
    cores: usize,
    load: f64,
    rtt_us: f64,
    requests: u64,
    seed: u64,
) -> f64 {
    let out = queueing::simulate(&QueueConfig {
        servers: cores,
        load,
        service: service.clone(),
        policy: Policy::CentralFcfs,
        requests,
        seed,
        warmup: requests / 5,
    });
    out.p99_us() + rtt_us
}

/// Max-load@SLO of a zero-overhead queueing bound (centralized or
/// partitioned FCFS), for the grey horizontal lines of Figures 3 and 7.
pub fn theory_max_load_at_slo(
    service: &ServiceDist,
    cores: usize,
    policy: Policy,
    slo_multiple: f64,
    requests: u64,
    resolution: usize,
) -> f64 {
    let slo_us = slo_multiple * service.mean_us();
    queueing::max_load_at_slo(
        |load| {
            queueing::simulate(&QueueConfig {
                servers: cores,
                load,
                service: service.clone(),
                policy,
                requests,
                seed: 7,
                warmup: requests / 5,
            })
            .p99_us()
        },
        slo_us,
        resolution,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(system: SystemKind, mean_us: f64) -> SysConfig {
        let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(mean_us), 0.5);
        cfg.requests = 15_000;
        cfg.warmup = 3_000;
        cfg
    }

    #[test]
    fn sweep_monotone_p99() {
        let pts = latency_throughput_sweep(&small(SystemKind::Zygos, 10.0), &[0.2, 0.5, 0.8]);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].p99_us < pts[2].p99_us, "p99 grows with load");
        assert!(pts[2].mrps > pts[0].mrps, "throughput grows with load");
    }

    #[test]
    fn paper_headline_zygos_beats_ix_at_10us_slo() {
        // The central claim (§6.1): for an SLO of 10×S̄ at p99, ZygOS
        // sustains much higher load than IX for 10µs exponential tasks.
        let slo = 100.0;
        let zygos = max_load_at_slo(&small(SystemKind::Zygos, 10.0), slo, 20);
        let ix = max_load_at_slo(&small(SystemKind::Ix, 10.0), slo, 20);
        assert!(
            zygos > ix + 0.10,
            "ZygOS load@SLO {zygos} should clearly beat IX {ix}"
        );
    }

    #[test]
    fn theory_bounds_bracket_systems() {
        let service = ServiceDist::exponential_us(10.0);
        let central = theory_max_load_at_slo(&service, 16, Policy::CentralFcfs, 10.0, 40_000, 20);
        let part = theory_max_load_at_slo(&service, 16, Policy::PartitionedFcfs, 10.0, 40_000, 20);
        // Known theory: ~0.96 and ~0.54.
        assert!(central > 0.85, "central bound = {central}");
        assert!((0.40..0.70).contains(&part), "partitioned bound = {part}");
        // Systems fall below their bound.
        let zygos = max_load_at_slo(&small(SystemKind::Zygos, 10.0), 100.0, 20);
        assert!(zygos < central + 0.05);
    }

    #[test]
    fn warm_sweep_matches_cold_within_tolerance() {
        // The warm-started sweep must be statistically equivalent to the
        // cold sweep: same distribution, different (shorter) warmup.
        let base = small(SystemKind::Zygos, 10.0);
        let loads = [0.3, 0.5, 0.7, 0.85];
        let warm = latency_throughput_sweep(&base, &loads);
        let cold = latency_throughput_sweep_cold(&base, &loads);
        for (w, c) in warm.iter().zip(&cold) {
            assert!(
                (w.mrps - c.mrps).abs() / c.mrps < 0.05,
                "load {}: warm mrps {} vs cold {}",
                w.load,
                w.mrps,
                c.mrps
            );
            assert!(
                (w.p99_us - c.p99_us).abs() / c.p99_us < 0.30,
                "load {}: warm p99 {} vs cold {}",
                w.load,
                w.p99_us,
                c.p99_us
            );
        }
    }

    #[test]
    fn warm_sweep_is_deterministic() {
        let base = small(SystemKind::Zygos, 10.0);
        let loads = [0.4, 0.6, 0.8];
        let a = latency_throughput_sweep(&base, &loads);
        let b = latency_throughput_sweep(&base, &loads);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.p99_us, y.p99_us);
            assert_eq!(x.mrps, y.mrps);
        }
    }

    #[test]
    fn first_sweep_point_is_bit_identical_to_cold() {
        // The chain head always runs cold, and `run_keep` must not change
        // its output: point 0 of warm and cold sweeps agree exactly.
        let base = small(SystemKind::Zygos, 10.0);
        let warm = latency_throughput_sweep(&base, &[0.5, 0.7]);
        let cold = latency_throughput_sweep_cold(&base, &[0.5, 0.7]);
        assert_eq!(warm[0].p99_us, cold[0].p99_us);
        assert_eq!(warm[0].mrps, cold[0].mrps);
    }

    #[test]
    fn bisection_probe_count_is_pinned_and_reuses_prefixes() {
        // Resolution 16 ⇒ 1 edge probe + ⌈log2(15)⌉ = 4 bisection probes.
        // Prefix reuse means exactly one of them (the first) runs cold —
        // this pins the double-warm-up fix: before it, every probe paid
        // the cold warmup.
        let (load, probes, cold) =
            max_load_at_slo_counting(&small(SystemKind::Zygos, 10.0), 100.0, 16);
        assert!(load > 0.5, "sane search result, got {load}");
        assert_eq!(probes, 5, "bisection probe count changed");
        assert_eq!(cold, 1, "only the first probe may run cold");
    }

    #[test]
    fn theory_central_curve_is_sane() {
        let service = ServiceDist::exponential_us(10.0);
        let p99 = theory_central_p99_us(&service, 16, 0.3, 4.0, 30_000, 3);
        // ≈ 46µs service p99 + 4µs RTT, with a little queueing.
        assert!((48.0..62.0).contains(&p99), "p99 = {p99}");
    }
}
