//! Experiment drivers: run one system, sweep load, or search max-load@SLO.
//!
//! These functions are the building blocks of every figure binary in
//! `zygos-bench`.

use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::{self, Policy, QueueConfig};

use crate::config::{SysConfig, SysOutput, SystemKind};
use crate::{ix, linux, zygos};

/// Runs one system-simulation experiment.
pub fn run_system(cfg: &SysConfig) -> SysOutput {
    match cfg.system {
        SystemKind::Zygos | SystemKind::ZygosNoInterrupts | SystemKind::Elastic { .. } => {
            zygos::run(cfg)
        }
        SystemKind::Ix => ix::run(cfg),
        SystemKind::LinuxPartitioned | SystemKind::LinuxFloating => linux::run(cfg),
    }
}

/// One point of a latency-vs-throughput sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Offered load (fraction of ideal saturation).
    pub load: f64,
    /// Measured throughput in MRPS.
    pub mrps: f64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: f64,
    /// Fraction of events executed by non-home cores (ZygOS only).
    pub steal_fraction: f64,
    /// IPIs delivered per measured request.
    pub ipis_per_req: f64,
    /// Time-averaged granted cores (== configured cores for static
    /// systems; lower when `SystemKind::Elastic` parks cores).
    pub avg_active_cores: f64,
    /// Fraction of arrivals shed by the credit gate (0 with admission
    /// off).
    pub shed_fraction: f64,
    /// Wire time (µs) burned by shed requests over the window: rejects
    /// that travelled to the server and back. Zero under client-side
    /// credit distribution, where creditless requests are never sent.
    pub wasted_wire_us: f64,
}

/// Sweeps offered load and reports `(throughput, p99)` points — the raw
/// data behind Figures 6, 8, 9, 10b and 11.
///
/// One config is built and reused with a per-point load override: a
/// `SysConfig` carries tenant/admission vectors and distribution tables,
/// and cloning all of that per grid point was pure sweep overhead.
pub fn latency_throughput_sweep(base: &SysConfig, loads: &[f64]) -> Vec<SweepPoint> {
    let mut cfg = base.clone();
    loads
        .iter()
        .map(|&load| {
            cfg.load = load;
            let out = run_system(&cfg);
            SweepPoint {
                load,
                mrps: out.throughput_mrps(),
                p99_us: out.p99_us(),
                steal_fraction: out.steal_fraction(),
                ipis_per_req: if out.completed == 0 {
                    0.0
                } else {
                    out.ipis as f64 / out.completed as f64
                },
                avg_active_cores: out.avg_active_cores,
                shed_fraction: out.shed_fraction(),
                wasted_wire_us: out.wasted_wire_us(),
            }
        })
        .collect()
}

/// Finds the maximum load at which a system meets `p99 ≤ slo_us` —
/// the paper's Figures 3 and 7 metric.
///
/// `resolution` is the load grid (50 ⇒ 2% steps, the figures' visual
/// granularity).
pub fn max_load_at_slo(base: &SysConfig, slo_us: f64, resolution: usize) -> f64 {
    let mut cfg = base.clone();
    queueing::max_load_at_slo(
        |load| {
            cfg.load = load;
            run_system(&cfg).p99_us()
        },
        slo_us,
        resolution,
    )
}

/// p99 of the zero-overhead **centralized** FCFS bound (M/G/n/FCFS) at a
/// given load, including the wire RTT — the grey theory curves.
pub fn theory_central_p99_us(
    service: &ServiceDist,
    cores: usize,
    load: f64,
    rtt_us: f64,
    requests: u64,
    seed: u64,
) -> f64 {
    let out = queueing::simulate(&QueueConfig {
        servers: cores,
        load,
        service: service.clone(),
        policy: Policy::CentralFcfs,
        requests,
        seed,
        warmup: requests / 5,
    });
    out.p99_us() + rtt_us
}

/// Max-load@SLO of a zero-overhead queueing bound (centralized or
/// partitioned FCFS), for the grey horizontal lines of Figures 3 and 7.
pub fn theory_max_load_at_slo(
    service: &ServiceDist,
    cores: usize,
    policy: Policy,
    slo_multiple: f64,
    requests: u64,
    resolution: usize,
) -> f64 {
    let slo_us = slo_multiple * service.mean_us();
    queueing::max_load_at_slo(
        |load| {
            queueing::simulate(&QueueConfig {
                servers: cores,
                load,
                service: service.clone(),
                policy,
                requests,
                seed: 7,
                warmup: requests / 5,
            })
            .p99_us()
        },
        slo_us,
        resolution,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(system: SystemKind, mean_us: f64) -> SysConfig {
        let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(mean_us), 0.5);
        cfg.requests = 15_000;
        cfg.warmup = 3_000;
        cfg
    }

    #[test]
    fn sweep_monotone_p99() {
        let pts = latency_throughput_sweep(&small(SystemKind::Zygos, 10.0), &[0.2, 0.5, 0.8]);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].p99_us < pts[2].p99_us, "p99 grows with load");
        assert!(pts[2].mrps > pts[0].mrps, "throughput grows with load");
    }

    #[test]
    fn paper_headline_zygos_beats_ix_at_10us_slo() {
        // The central claim (§6.1): for an SLO of 10×S̄ at p99, ZygOS
        // sustains much higher load than IX for 10µs exponential tasks.
        let slo = 100.0;
        let zygos = max_load_at_slo(&small(SystemKind::Zygos, 10.0), slo, 20);
        let ix = max_load_at_slo(&small(SystemKind::Ix, 10.0), slo, 20);
        assert!(
            zygos > ix + 0.10,
            "ZygOS load@SLO {zygos} should clearly beat IX {ix}"
        );
    }

    #[test]
    fn theory_bounds_bracket_systems() {
        let service = ServiceDist::exponential_us(10.0);
        let central = theory_max_load_at_slo(&service, 16, Policy::CentralFcfs, 10.0, 40_000, 20);
        let part = theory_max_load_at_slo(&service, 16, Policy::PartitionedFcfs, 10.0, 40_000, 20);
        // Known theory: ~0.96 and ~0.54.
        assert!(central > 0.85, "central bound = {central}");
        assert!((0.40..0.70).contains(&part), "partitioned bound = {part}");
        // Systems fall below their bound.
        let zygos = max_load_at_slo(&small(SystemKind::Zygos, 10.0), 100.0, 20);
        assert!(zygos < central + 0.05);
    }

    #[test]
    fn theory_central_curve_is_sane() {
        let service = ServiceDist::exponential_us(10.0);
        let p99 = theory_central_p99_us(&service, 16, 0.3, 4.0, 30_000, 3);
        // ≈ 46µs service p99 + 4µs RTT, with a little queueing.
        assert!((48.0..62.0).contains(&p99), "p99 = {p99}");
    }
}
