//! The IX system model: shared-nothing, run-to-completion dataplane with
//! adaptive bounded batching (paper §2.2, §3.3; Belay et al., OSDI'14).
//!
//! Each core exclusively owns the connections RSS maps to it. The core loop
//! alternates between network processing of a bounded batch (up to `B`
//! packets — *adaptive*: it takes what is present, never waits to fill a
//! batch) and run-to-completion application execution of that entire batch.
//! Nothing is ever rebalanced: an overloaded core queues while its
//! neighbours idle — the head-of-line blocking and temporary imbalance that
//! ZygOS removes.
//!
//! Dispatch order comes from the shared policy plane: the [`RtcPolicy`]
//! ladder is "serve the own NIC ring, nothing else" — no ready-queue rung
//! (run-to-completion executes a whole batch inline after network
//! processing), no steal rungs. This file owns only the IX mechanisms: the
//! per-core ring and the batched net/app alternation.

use std::collections::VecDeque;

use zygos_sched::{DispatchPolicy, RtcPolicy, Rung};
use zygos_sim::engine::{Engine, Model, Scheduler};
use zygos_sim::time::{SimDuration, SimTime};

use crate::arrivals::{Recorder, Req, Source};
use crate::config::{SysConfig, SysOutput, SystemKind};

enum Ev {
    Gen,
    Packet(Req),
    /// Network processing of a batch finished.
    NetDone {
        core: usize,
        batch: VecDeque<Req>,
    },
    /// One application event of the current batch finished.
    AppDone {
        core: usize,
        rest: VecDeque<Req>,
    },
}

struct Core {
    ring: VecDeque<Req>,
    busy: bool,
}

struct IxModel {
    cfg: SysConfig,
    source: Source,
    rec: Recorder,
    cores: Vec<Core>,
    /// The shared dispatch policy: own-ring only, never steal.
    dispatch: RtcPolicy,
    /// Free-list of batch buffers — the net/app alternation recycles one
    /// per in-flight batch instead of allocating per RX batch.
    batch_pool: Vec<VecDeque<Req>>,
    events_done: u64,
}

impl IxModel {
    fn new(cfg: SysConfig) -> Self {
        let source = Source::new(&cfg);
        let rec = Recorder::new(&cfg, source.half_rtt);
        IxModel {
            cores: (0..cfg.cores)
                .map(|_| Core {
                    ring: VecDeque::new(),
                    busy: false,
                })
                .collect(),
            source,
            rec,
            cfg,
            dispatch: RtcPolicy,
            batch_pool: Vec::new(),
            events_done: 0,
        }
    }

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    /// The core loop: walk the policy's dispatch ladder (for IX, the only
    /// rung is the own NIC ring; application execution runs to completion
    /// inline after network processing, so there is no ready-queue rung).
    fn run_core(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.cores[core].busy {
            return;
        }
        let policy = self.dispatch;
        for &rung in policy.ladder() {
            let took = match rung {
                Rung::LocalNet => self.rung_local_net(core, now, sched),
                _ => false,
            };
            if took {
                return;
            }
        }
    }

    /// Network processing over a bounded batch from the own ring.
    fn rung_local_net(&mut self, core: usize, _now: SimTime, sched: &mut Scheduler<Ev>) -> bool {
        if self.cores[core].ring.is_empty() {
            return false;
        }
        // Adaptive bounded batching: take min(B, available) — never wait.
        let k = (self.cores[core].ring.len() as u64).min(self.cfg.rx_batch.max(1));
        let mut batch = self.batch_pool.pop().unwrap_or_default();
        batch.extend(self.cores[core].ring.drain(..k as usize));
        let cost = &self.cfg.cost;
        let dur =
            cost.driver_batch_fixed_ns + k * (cost.driver_per_pkt_ns + cost.stack_rx_per_pkt_ns);
        self.cores[core].busy = true;
        sched.after(Self::ns(dur), Ev::NetDone { core, batch });
        true
    }

    /// Begins executing the next application event of a batch.
    fn next_app_event(
        &mut self,
        core: usize,
        mut rest: VecDeque<Req>,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        match rest.pop_front() {
            Some(req) => {
                let cost = &self.cfg.cost;
                // Run to completion: dispatch + service + syscall + TX.
                let dur = cost.event_dispatch_ns
                    + req.service.as_nanos()
                    + cost.syscall_batch_ns
                    + cost.stack_tx_per_msg_ns;
                let end = now + Self::ns(dur);
                // The response leaves the wire at the end of this event.
                self.rec.complete(&req, end);
                self.events_done += 1;
                sched.at(end, Ev::AppDone { core, rest });
            }
            None => {
                // Batch complete; recycle its buffer and loop back to
                // network processing.
                self.batch_pool.push(rest);
                self.cores[core].busy = false;
                self.run_core(core, now, sched);
            }
        }
    }
}

impl Model for IxModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.rec.is_done() {
            sched.stop();
            return;
        }
        match ev {
            Ev::Gen => {
                let req = self.source.next_req(now);
                sched.after(self.source.half_rtt, Ev::Packet(req));
                let gap = self.source.next_gap();
                sched.after(gap, Ev::Gen);
            }
            Ev::Packet(req) => {
                let home = req.home as usize;
                self.cores[home].ring.push_back(req);
                self.run_core(home, now, sched);
            }
            Ev::NetDone { core, batch } => {
                self.next_app_event(core, batch, now, sched);
            }
            Ev::AppDone { core, rest } => {
                self.next_app_event(core, rest, now, sched);
            }
        }
    }
}

/// Runs the IX system simulation.
pub(crate) fn run(cfg: &SysConfig) -> SysOutput {
    debug_assert_eq!(cfg.system, SystemKind::Ix);
    let mut engine = Engine::new(IxModel::new(cfg.clone()));
    engine.schedule(SimTime::ZERO, Ev::Gen);
    engine.run();
    let now = engine.now();
    let events = engine.processed();
    let model = engine.into_model();
    let window = model.rec.window_us();
    SysOutput {
        // The IX model exists as a batching baseline; the lifecycle
        // tracer instruments the ZygOS-family path only.
        telemetry: None,
        latency: model.rec.latency.clone(),
        completed: model.rec.measured(),
        generated: model.source.emitted(),
        completed_total: model.rec.completed_total(),
        events,
        sim_time_us: if window > 0.0 {
            window
        } else {
            now.as_micros_f64()
        },
        local_events: model.events_done,
        stolen_events: 0,
        ipis: 0,
        preemptions: 0,
        avg_active_cores: cfg.cores as f64,
        admitted: 0,
        rejected: 0,
        wire_rejects: 0,
        retries: 0,
        give_ups: 0,
        timeouts: 0,
        rtt_us: cfg.cost.network_rtt_ns as f64 / 1_000.0,
        rejected_by_class: vec![0],
        admitted_by_class: vec![0],
        stage_counts: Vec::new(),
        stage_p99_wait_us: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zygos_sim::dist::ServiceDist;

    fn quick(load: f64, mean_us: f64, batch: u64) -> SysOutput {
        let mut cfg = SysConfig::paper(SystemKind::Ix, ServiceDist::exponential_us(mean_us), load);
        cfg.requests = 20_000;
        cfg.warmup = 4_000;
        cfg.rx_batch = batch;
        run(&cfg)
    }

    #[test]
    fn completes_and_never_steals() {
        let out = quick(0.4, 10.0, 1);
        assert_eq!(out.completed, 20_000);
        assert_eq!(out.stolen_events, 0);
        assert_eq!(out.ipis, 0);
    }

    #[test]
    fn partitioned_tail_grows_much_earlier_than_pooled() {
        // At 70% load a partitioned M/G/1-like system has a far worse tail
        // than centralized designs; just sanity-check stability + ordering.
        let lo = quick(0.3, 10.0, 1);
        let hi = quick(0.7, 10.0, 1);
        assert!(hi.p99_us() > lo.p99_us() * 1.5);
    }

    #[test]
    fn batching_raises_saturation_throughput() {
        // With tiny tasks the fixed driver cost dominates; B=64 amortizes
        // it and sustains a higher load with bounded latency.
        let b1 = quick(0.8, 2.0, 1);
        let b64 = quick(0.8, 2.0, 64);
        assert!(
            b64.p99_us() < b1.p99_us(),
            "B=64 p99 {} should beat B=1 p99 {}",
            b64.p99_us(),
            b1.p99_us()
        );
    }

    #[test]
    fn run_to_completion_head_of_line_blocking() {
        // Bimodal-1 at moderate load: the p99 reflects short requests stuck
        // behind 55µs ones on the same core — well above the 55µs mode.
        let mut cfg = SysConfig::paper(SystemKind::Ix, ServiceDist::bimodal1_us(10.0), 0.5);
        cfg.requests = 30_000;
        cfg.warmup = 5_000;
        let out = run(&cfg);
        assert!(out.p99_us() > 60.0, "p99 = {}", out.p99_us());
    }
}
