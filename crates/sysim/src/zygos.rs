//! The ZygOS system model (paper §4–§5) on the discrete-event engine.
//!
//! Each simulated core owns a NIC ring (RSS-fed), a shuffle queue of ready
//! connections, and a remote-syscall queue. The *order* in which a core
//! serves those queues is no longer written here: it comes from the shared
//! [`zygos_sched::DispatchPolicy`] ladder (the same object the live
//! runtime's worker loop consults), built as a [`ZygosPolicy`] whose rungs
//! for the paper's system are:
//!
//! 1. execute pending **remote syscalls** (TX for stolen executions),
//! 2. dequeue the next ready connection from the **own shuffle queue**,
//! 3. run the **network stack** over a bounded batch from the own NIC ring,
//! 4. **steal** a ready connection from a random other core,
//! 5. if IPIs are enabled, scan other cores' NIC rings and **send an IPI**
//!    to a home core that sits in application code with undrained packets,
//! 6. go idle (woken by any state change it could act on).
//!
//! IPIs interrupt *application* execution only: the handler replenishes the
//! shuffle queue from the NIC ring and flushes remote syscalls, extending
//! the interrupted event's completion by the handler cost — exactly the
//! preemption a real exit-less IPI performs, which the live runtime cannot
//! do (a Rust closure is uninterruptible; see the host-split table in
//! `docs/ARCHITECTURE.md`) and the simulator can.
//!
//! The `ZygosNoInterrupts` variant drops the IPI rung from the ladder: the
//! cooperative mode whose head-of-line blocking the paper's Figure 6
//! quantifies.
//!
//! # Elastic mode and preemptive quanta
//!
//! [`SystemKind::Elastic`] layers the `zygos-sched` control plane on this
//! model. A periodic `Control` event feeds a [`PolicySignal`] (busy-core
//! and backlog counts plus, when [`SysConfig::slo`] is set, the measured
//! worst p99-vs-SLO ratio of the last window) to an [`AllocPolicy`] — the
//! SLO-margin [`SloController`] by default, or the PR-1 utilization rule
//! via [`AllocKind::Utilization`]. Revoked cores drain their queues into
//! an active core and stop participating (their RSS queues are redirected,
//! modeling indirection-table reprogramming); granted cores rejoin and
//! steal immediately. A nonzero [`SysConfig::preemption_quantum_us`] arms
//! a per-chunk timer: application chunks longer than the quantum end in a
//! `Preempt` event (same epoch-guard machinery as IPIs) that charges the
//! context save/restore cost and moves the remainder to a **background
//! queue** below all fresh work — FCFS-with-aging or SRPT on the
//! remaining-time stamps, per [`SysConfig::background_order`] — bounding
//! head-of-line blocking under dispersive service times.
//!
//! # Admission control
//!
//! With [`SysConfig::admission`] set, arrivals pass a Breakwater-style
//! [`CreditPool`]: no credit → the request is shed before it costs any
//! processing, and an AIMD loop on the `Control` tick resizes the pool
//! from the measured window tail. This is what keeps the *admitted* tail
//! bounded under sustained overload (`fig13`). Three refinements close
//! the loop end-to-end:
//!
//! * [`AdmissionMode`] picks *where* the shed happens: at the server edge
//!   (the reject burns a full wire RTT — request there, explicit reject
//!   back) or at the client (sender-side credits; a creditless request is
//!   never sent, so the shed is free on the wire). The simulator models
//!   the converged state of Breakwater's credit distribution by letting
//!   the source consult the shared pool at send time; the live runtime
//!   implements the actual distribution by piggybacking grants on
//!   response headers.
//! * With [`SysConfig::slo`] set, the AIMD target is **per tenant class**
//!   ([`zygos_load::slo::TenantSlos::aimd_targets_us`] at [`CREDIT_HEADROOM`]) and the
//!   control tick feeds the worst per-class `tail/target` ratio — one
//!   AIMD rule serving µs-scale and ms-scale tenants simultaneously.
//! * Shedding is **weighted-fair** ([`zygos_load::slo::TenantSlos::admit_fractions`]):
//!   each class is admitted against a fraction of the pool, smallest for
//!   the loosest class, so the tenants with the most latency headroom
//!   absorb the overload first.

use std::collections::{HashMap, VecDeque};

use zygos_load::retry::RetryDecision;
use zygos_load::route::conn_key;
use zygos_sched::{
    AllocPolicy, AllocatorConfig, BackgroundOrder, CoreAllocator, CoreSecondsMeter, CreditPool,
    Decision, DispatchPolicy, PolicySignal, QuantumPolicy, Rung, SloController, SloTuning,
    UtilizationPolicy, ZygosPolicy,
};
use zygos_sim::engine::{Engine, Model, Scheduler};
use zygos_sim::stats::WindowHistogram;
use zygos_sim::time::{SimDuration, SimTime};
use zygos_telemetry::{Registry, SeriesId, SeriesKind, TelemetryOut, TraceKind, Tracer};

use crate::arrivals::{Recorder, Req, Source};
use crate::config::{AdmissionMode, AllocKind, SysConfig, SysOutput, SystemKind, CREDIT_HEADROOM};

#[derive(Clone)]
pub(crate) enum Ev {
    /// Generate the next client request.
    Gen,
    /// A request packet reaches its home core's NIC ring; the `u32` is
    /// which transmission attempt this is (0 = the original send, >0 =
    /// a retry re-issue fed back by the retry policy).
    Packet(Req, u32),
    /// The retry policy's backoff delay expired: the client re-issues
    /// the request (attempt number carried), re-entering the same
    /// admission path the original took.
    Retry { req: Req, attempt: u32 },
    /// The client's per-request timeout fired for this attempt; stale
    /// (and ignored) unless the attempt is still the live one.
    Timeout { req: Req, attempt: u32 },
    /// Core scheduling-loop entry.
    Run(usize),
    /// The core's current work chunk completes (stale if epoch mismatches).
    WorkDone { core: usize, epoch: u64 },
    /// An IPI arrives at a core.
    Ipi(usize),
    /// The quantum timer fires on a core mid-chunk (stale if epoch
    /// mismatches).
    Preempt { core: usize, epoch: u64 },
    /// Control-plane tick (elastic allocation and/or credit AIMD).
    Control,
}

#[derive(Clone)]
enum Work {
    /// Running the network stack over an RX batch.
    Net { batch: Vec<Req> },
    /// Executing one application event; the rest of the connection's batch
    /// follows.
    App {
        conn: u32,
        cur: Req,
        rest: VecDeque<Req>,
        stolen: bool,
        /// Chunk came from the background (preempted) queue: it fills idle
        /// capacity by policy and is excluded from the controller's
        /// foreground-utilization signal.
        bg: bool,
    },
    /// Executing remote batched syscalls (TX for stolen events).
    RemoteTx { batch: Vec<Req> },
}

/// One background (preempted) queue entry. A quantum-expired remainder is
/// *known long*, so it only runs when no fresh work is visible anywhere —
/// and it carries its remaining-time stamp, which is what makes SRPT
/// ordering free.
#[derive(Clone)]
struct BgEntry {
    conn: u32,
    /// Enqueue time, for the aging promotion.
    since: SimTime,
    /// Remaining service of the connection's interrupted event (the SRPT
    /// key).
    remaining_ns: u64,
}

#[derive(Clone)]
struct Core {
    ring: VecDeque<Req>,
    shuffle: VecDeque<u32>,
    /// Preempted connections (Shinjuku-style second-level queue), ordered
    /// per [`DispatchPolicy::background_order`]: FCFS keeps arrival order,
    /// SRPT keeps the least-remaining entry at the front. Entries older
    /// than the policy's aging bound are promoted ahead of fresh work:
    /// without aging, sustained overload starves preempted connections —
    /// and with them every later request pipelined on the same socket
    /// (§4.3 ordering holds per connection).
    bg: VecDeque<BgEntry>,
    remote_sys: Vec<Req>,
    work: Option<Work>,
    /// Completion time of the current work chunk (valid when `work` is set).
    end: SimTime,
    /// Epoch guard: bumping it invalidates the scheduled `WorkDone`.
    epoch: u64,
    ipi_pending: bool,
    /// Service nanoseconds of the current app chunk still unexecuted at its
    /// scheduled `Preempt`; `0` when the chunk runs to completion.
    slice_remaining_ns: u64,
    /// Elastic mode: whether this core is granted (always `true` for the
    /// static systems).
    active: bool,
}

impl Core {
    fn is_idle(&self) -> bool {
        self.work.is_none()
    }

    fn in_app(&self) -> bool {
        matches!(self.work, Some(Work::App { .. }))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnSt {
    Idle,
    Ready,
    Busy,
}

/// A per-core occupancy bitmask. The scheduling loop's sweeps (steal,
/// IPI scan, idle wakeups) are pure emptiness scans over all cores; these
/// masks answer them from a word or two instead of walking sixteen `Core`
/// structs' queue headers on every loop entry. The `Core` fields remain
/// the source of truth — the masks are maintained at every queue/work
/// transition and validated against them in debug builds.
#[derive(Clone)]
struct CoreMask {
    w: Vec<u64>,
}

impl CoreMask {
    fn new(cores: usize) -> Self {
        CoreMask {
            w: vec![0; cores.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.w[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.w[i >> 6] &= !(1 << (i & 63));
    }

    #[inline]
    fn put(&mut self, i: usize, v: bool) {
        if v {
            self.set(i)
        } else {
            self.clear(i)
        }
    }

    #[inline]
    fn test(&self, i: usize) -> bool {
        self.w[i >> 6] & (1 << (i & 63)) != 0
    }
}

/// True if `a ∧ ¬b` is non-empty.
#[inline]
fn any_and_not(a: &CoreMask, b: &CoreMask) -> bool {
    a.w.iter().zip(&b.w).any(|(&aw, &bw)| aw & !bw != 0)
}

/// True if `a ∧ b` minus core `except` is non-empty — the word-level
/// short-circuit for a steal sweep: when no other active core has matching
/// occupancy, the whole victim walk is skipped.
#[inline]
fn any_other(a: &CoreMask, b: &CoreMask, except: usize) -> bool {
    for (wi, (&aw, &bw)) in a.w.iter().zip(&b.w).enumerate() {
        let mut bits = aw & bw;
        if wi == except >> 6 {
            bits &= !(1 << (except & 63));
        }
        if bits != 0 {
            return true;
        }
    }
    false
}

#[derive(Clone)]
struct Conn {
    st: ConnSt,
    pending: VecDeque<Req>,
}

/// Shorthand for nanosecond durations.
fn ns(v: u64) -> SimDuration {
    SimDuration::from_nanos(v)
}

/// Minimum completions in a control window before its tail is trusted as
/// a signal — shared with the live runtime's control tick via
/// `zygos-load` so the hosts cannot drift.
use zygos_load::slo::MIN_WINDOW_SAMPLES;

/// Elastic-mode control-plane state.
#[derive(Clone)]
struct Elastic {
    allocator: Box<dyn AllocPolicy>,
    meter: CoreSecondsMeter,
    /// RSS redirection: home core → serving core (identity while active).
    redirect: Vec<usize>,
    /// Busy-core integral at the previous control tick (for time-averaged
    /// utilization between ticks).
    last_ctl_busy_integral: u128,
    last_ctl_ns: u64,
    /// Granted-core integral snapshot taken when the measurement window
    /// opened, so reported core-seconds exclude the warmup (during which
    /// the fleet starts fully granted).
    meas_snapshot: Option<(u64, u128)>,
    /// `ZYGOS_ELASTIC_TRACE` read once at construction (the env lookup is
    /// too expensive for a 25µs-period tick path).
    trace: bool,
}

/// The model's telemetry plane: the per-core lifecycle tracer plus the
/// metrics registry the control tick harvests time-series into. `None`
/// (the default) costs each hook site one untaken branch on the `Option`
/// discriminant — the PR-5 zero-alloc hot loop is otherwise untouched.
struct SimTelemetry {
    /// Per-core ring tracer; `trace_on == false` leaves it empty (the
    /// config asked only for series).
    tracer: Tracer,
    trace_on: bool,
    /// Named counter/gauge/series store, harvested on the control tick.
    reg: Registry,
    /// Which series the scenario asked to record.
    harvest: Vec<SeriesKind>,
    /// Record a series point every N control ticks.
    series_every: u32,
    tick: u32,
    s_admitted: Option<SeriesId>,
    s_credits: Option<SeriesId>,
    s_active: Option<SeriesId>,
    s_shed: Vec<SeriesId>,
    s_window_p99: Option<SeriesId>,
    s_retry: Option<SeriesId>,
    /// Counter snapshots at the previous harvested tick, for rates.
    last_admitted: u64,
    last_rejected: Vec<u64>,
    last_retries: u64,
    last_t_ns: u64,
    /// The most recent control-tick window tail (µs), stashed by
    /// `control()` before the window is cleared so the harvest can
    /// publish it (NaN when the window had too few samples).
    last_window_tail: f64,
}

pub(crate) struct ZygosModel {
    cfg: SysConfig,
    source: Source,
    rec: Recorder,
    /// Lifecycle tracer + metrics registry (`None` = telemetry off).
    telem: Option<SimTelemetry>,
    cores: Vec<Core>,
    conns: Vec<Conn>,
    /// Scratch buffer for randomized victim order.
    victims: Vec<usize>,
    /// Dedicated RNG for victim-order shuffles. Keeping it off the
    /// workload RNG means arrivals and service times are identical across
    /// policies for a given seed (paired comparisons), and lets the loop
    /// skip the shuffle entirely when a sweep's occupancy mask is empty —
    /// each shuffle fully re-randomizes, so skipping no-op shuffles leaves
    /// the victim-order distribution unchanged.
    victims_rng: zygos_sim::rng::Xoshiro256,
    /// The shared dispatch policy: rung order, steal/preempt decisions,
    /// background discipline. The model owns the queues; this owns the
    /// choices. Held concretely (not `Box<dyn DispatchPolicy>`) so every
    /// per-dispatch decision is a direct, inlinable call.
    dispatch: ZygosPolicy,
    /// Copy of the policy's ladder (iterating it while mutating the model
    /// must not borrow the policy).
    ladder: Vec<Rung>,
    elastic: Option<Elastic>,
    /// Control tick period (armed when elastic or admission is on).
    ctl_period: SimDuration,
    /// Credit-based admission gate.
    admission: Option<CreditPool>,
    /// Per-class pool fractions for weighted fair shedding (all 1.0 when
    /// no tenant SLOs are configured).
    admit_fractions: Vec<f64>,
    /// Per-class AIMD latency targets (µs), derived from the SLO bounds at
    /// [`CREDIT_HEADROOM`]; empty when no tenant SLOs are configured (the
    /// AIMD loop then steers the raw window tail to `CreditConfig::target`).
    credit_targets_us: Vec<f64>,
    /// Sheds per tenant class.
    rejected_by_class: Vec<u64>,
    /// Admissions per tenant class.
    admitted_by_class: Vec<u64>,
    /// Sheds that burned wire RTT (server-edge rejects).
    wire_rejects: u64,
    /// The closed-loop retry plane (all dormant when [`SysConfig::retry`]
    /// is `None`, which keeps the open-loop engine bit-identical):
    /// retry re-issues scheduled, logical requests abandoned, and
    /// client-timeout expiries.
    retries: u64,
    give_ups: u64,
    timeouts_fired: u64,
    /// Live attempt number per in-flight request sequence, maintained
    /// only when a client timeout is armed: a `Timeout` event is stale —
    /// the attempt was superseded or the logical request completed —
    /// unless its attempt matches this map. World state (clones and
    /// warm-retargets carry it), touched only off the completion fast
    /// path when timeouts are off.
    retry_live: HashMap<u32, u32>,
    /// Precomputed `retry_timeout_us` (`None` = timeouts off).
    timeout_dur: Option<SimDuration>,
    /// Per-SLO-class latency window of the current control tick (single
    /// class when no tenant SLOs are configured). Constant-memory
    /// histograms: recording is O(1) and the per-tick harvest touches
    /// only the used buckets, instead of flatten + `sort_unstable` over
    /// every completion of the window.
    win: Vec<WindowHistogram>,
    /// Whether completions are sampled into `win` at all.
    collect_window: bool,
    /// Free-list of request-batch buffers (RX batches, remote-syscall
    /// flushes): the hot loop recycles them instead of allocating a
    /// `Vec<Req>` per batch.
    batch_pool: Vec<Vec<Req>>,
    /// Occupancy masks over cores (see [`CoreMask`]).
    m_active: CoreMask,
    m_busy: CoreMask,
    m_inapp: CoreMask,
    m_ring: CoreMask,
    m_shuffle: CoreMask,
    m_bg: CoreMask,
    m_remote: CoreMask,
    m_ipi: CoreMask,
    /// Cores with a queued-but-unfired `Ev::Run`. A queued run re-reads
    /// all queue state when it fires, so while one is in flight further
    /// wakeups for the same core are redundant and are not scheduled —
    /// this is what keeps a wake *storm* (every ready batch waking every
    /// idle core) from flooding the event queue at low load.
    m_run_pending: CoreMask,
    // Telemetry.
    local_events: u64,
    stolen_events: u64,
    ipis_delivered: u64,
    preemptions: u64,
    /// All cores with work installed (telemetry).
    busy: BusyMeter,
    /// Cores running *foreground* work — everything except background
    /// (preempted) application chunks, which fill idle capacity by policy
    /// and must not read as demand to the elastic controller.
    fg_busy: BusyMeter,
}

/// Integrates a core-count signal over simulated time.
#[derive(Clone, Copy, Default)]
struct BusyMeter {
    count: usize,
    integral_ns: u128,
    last_ns: u64,
}

impl BusyMeter {
    /// Flushes the integral to `ns` and applies `delta` to the count.
    fn update(&mut self, ns: u64, delta: i64) {
        self.integral_ns += ns.saturating_sub(self.last_ns) as u128 * self.count as u128;
        self.last_ns = self.last_ns.max(ns);
        self.count = (self.count as i64 + delta) as usize;
    }
}

/// Checkpoint semantics: a clone is the *entire simulated world* — every
/// queue, connection state, RNG position, credit, allocator EWMA, and
/// occupancy mask — with one deliberate exception: the telemetry plane.
/// Telemetry is a pure observer (pinned bit-identical by
/// `tracing_leaves_metrics_and_event_counts_bit_identical`), so dropping
/// it cannot perturb the trajectory; cloning a multi-megabyte trace ring
/// per checkpoint would make warm-start sweeps pay for a plane they are
/// required to run without (the drivers only warm-start telemetry-off
/// configs).
impl Clone for ZygosModel {
    fn clone(&self) -> Self {
        ZygosModel {
            cfg: self.cfg.clone(),
            source: self.source.clone(),
            rec: self.rec.clone(),
            telem: None,
            cores: self.cores.clone(),
            conns: self.conns.clone(),
            victims: self.victims.clone(),
            victims_rng: self.victims_rng.clone(),
            dispatch: self.dispatch.clone(),
            ladder: self.ladder.clone(),
            elastic: self.elastic.clone(),
            ctl_period: self.ctl_period,
            admission: self.admission.clone(),
            admit_fractions: self.admit_fractions.clone(),
            credit_targets_us: self.credit_targets_us.clone(),
            rejected_by_class: self.rejected_by_class.clone(),
            admitted_by_class: self.admitted_by_class.clone(),
            wire_rejects: self.wire_rejects,
            retries: self.retries,
            give_ups: self.give_ups,
            timeouts_fired: self.timeouts_fired,
            retry_live: self.retry_live.clone(),
            timeout_dur: self.timeout_dur,
            win: self.win.clone(),
            collect_window: self.collect_window,
            batch_pool: self.batch_pool.clone(),
            m_active: self.m_active.clone(),
            m_busy: self.m_busy.clone(),
            m_inapp: self.m_inapp.clone(),
            m_ring: self.m_ring.clone(),
            m_shuffle: self.m_shuffle.clone(),
            m_bg: self.m_bg.clone(),
            m_remote: self.m_remote.clone(),
            m_ipi: self.m_ipi.clone(),
            m_run_pending: self.m_run_pending.clone(),
            local_events: self.local_events,
            stolen_events: self.stolen_events,
            ipis_delivered: self.ipis_delivered,
            preemptions: self.preemptions,
            busy: self.busy,
            fg_busy: self.fg_busy,
        }
    }
}

impl ZygosModel {
    pub(crate) fn new(cfg: SysConfig) -> Self {
        let source = Source::new(&cfg);
        let rec = Recorder::new(&cfg, source.half_rtt);
        let ipis_enabled = matches!(cfg.system, SystemKind::Zygos | SystemKind::Elastic { .. });
        let quantum = QuantumPolicy::from_us(cfg.preemption_quantum_us);
        let dispatch = ZygosPolicy::new(true, ipis_enabled, quantum, cfg.background_order)
            .with_randomized_victims(cfg.randomize_steal_order);
        let ladder = dispatch.ladder().to_vec();
        let elastic = match cfg.system {
            SystemKind::Elastic { min_cores } => {
                let alloc_cfg = AllocatorConfig {
                    min_cores: min_cores.clamp(1, cfg.cores),
                    max_cores: cfg.cores,
                    tuning: cfg.elastic.tuning,
                };
                let allocator: Box<dyn AllocPolicy> = match cfg.elastic.alloc {
                    AllocKind::Utilization => {
                        Box::new(UtilizationPolicy::new(CoreAllocator::new(alloc_cfg)))
                    }
                    AllocKind::SloDriven => {
                        Box::new(SloController::new(alloc_cfg, SloTuning::default()))
                    }
                };
                Some(Elastic {
                    allocator,
                    meter: CoreSecondsMeter::new(0, cfg.cores),
                    redirect: (0..cfg.cores).collect(),
                    last_ctl_busy_integral: 0,
                    last_ctl_ns: 0,
                    meas_snapshot: None,
                    trace: std::env::var_os("ZYGOS_ELASTIC_TRACE").is_some(),
                })
            }
            _ => None,
        };
        let classes = cfg.slo.as_ref().map_or(1, |t| t.classes().len());
        let admission = cfg.admission.map(|c| CreditPool::with_classes(c, classes));
        // The window histograms feed the AIMD/SLO controllers, and also
        // the `window_p99_us` series when a scenario asks for it with no
        // controller armed (the metastable gates read the *ungated* twin
        // through exactly that series).
        let wants_window_p99 = cfg
            .telemetry
            .as_ref()
            .is_some_and(|t| t.series.contains(&SeriesKind::WindowP99));
        let collect_window = admission.is_some() || cfg.slo.is_some() || wants_window_p99;
        let (admit_fractions, credit_targets_us) = match (&admission, &cfg.slo) {
            (Some(_), Some(slo)) => (slo.admit_fractions(), slo.aimd_targets_us(CREDIT_HEADROOM)),
            _ => (vec![1.0; classes], Vec::new()),
        };
        let telem = cfg.telemetry.as_ref().filter(|t| !t.is_off()).map(|t| {
            // Ring capacity: every completed lifecycle has ≤ 8 points plus
            // preempt slices, and under overload each *shed* arrival adds
            // two more (Arrival, Shed) — at offered load L the gate turns
            // away ~(L-1)/L of arrivals, so budget 16 points per completed
            // lifecycle (covers sheds up to ~4x the completion count).
            // A wrapped ring tears the *oldest* lifecycles, which skews any
            // trace-derived quantile; size to hold the full run so drops
            // only happen under pathological preemption/overload storms.
            let lifecycles = (cfg.requests + cfg.warmup) / t.sample_period.max(1) as u64 + 1;
            let per_core = (lifecycles as usize * 16 / cfg.cores.max(1)).clamp(4_096, 1 << 21);
            let mut reg = Registry::default();
            let mut s_admitted = None;
            let mut s_credits = None;
            let mut s_active = None;
            let mut s_shed = Vec::new();
            let mut s_window_p99 = None;
            let mut s_retry = None;
            for kind in &t.series {
                match kind {
                    SeriesKind::AdmittedRate => {
                        s_admitted = Some(reg.register_series(kind.name(), t.max_series_points));
                    }
                    SeriesKind::CreditCapacity => {
                        s_credits = Some(reg.register_series(kind.name(), t.max_series_points));
                    }
                    SeriesKind::ActiveCores => {
                        s_active = Some(reg.register_series(kind.name(), t.max_series_points));
                    }
                    SeriesKind::ShedByClass => {
                        s_shed = (0..classes)
                            .map(|c| {
                                reg.register_series(
                                    &format!("{}{c}", kind.name()),
                                    t.max_series_points,
                                )
                            })
                            .collect();
                    }
                    SeriesKind::WindowP99 => {
                        s_window_p99 = Some(reg.register_series(kind.name(), t.max_series_points));
                    }
                    SeriesKind::RetryRate => {
                        s_retry = Some(reg.register_series(kind.name(), t.max_series_points));
                    }
                }
            }
            SimTelemetry {
                tracer: Tracer::new(cfg.cores, per_core, t.sample_period),
                trace_on: t.trace,
                reg,
                harvest: t.series.clone(),
                series_every: t.series_every.max(1),
                tick: 0,
                s_admitted,
                s_credits,
                s_active,
                s_shed,
                s_window_p99,
                s_retry,
                last_admitted: 0,
                last_rejected: vec![0; classes],
                last_retries: 0,
                last_t_ns: 0,
                last_window_tail: f64::NAN,
            }
        });
        ZygosModel {
            telem,
            cores: (0..cfg.cores)
                .map(|_| Core {
                    ring: VecDeque::new(),
                    shuffle: VecDeque::new(),
                    bg: VecDeque::new(),
                    remote_sys: Vec::new(),
                    work: None,
                    end: SimTime::ZERO,
                    epoch: 0,
                    ipi_pending: false,
                    slice_remaining_ns: 0,
                    active: true,
                })
                .collect(),
            conns: (0..cfg.conns)
                .map(|_| Conn {
                    st: ConnSt::Idle,
                    pending: VecDeque::new(),
                })
                .collect(),
            victims: (0..cfg.cores).collect(),
            victims_rng: zygos_sim::rng::Xoshiro256::new(cfg.seed ^ 0x0056_4543_544F_5253), // "VECTORS"
            source,
            rec,
            dispatch,
            ladder,
            elastic,
            ctl_period: SimDuration::from_micros_f64(cfg.elastic.control_period_us.max(1.0)),
            admission,
            admit_fractions,
            credit_targets_us,
            rejected_by_class: vec![0; classes],
            admitted_by_class: vec![0; classes],
            wire_rejects: 0,
            retries: 0,
            give_ups: 0,
            timeouts_fired: 0,
            retry_live: HashMap::new(),
            timeout_dur: match (cfg.retry, cfg.retry_timeout_us) {
                (Some(_), Some(t)) if t > 0.0 => Some(SimDuration::from_micros_f64(t)),
                _ => None,
            },
            // The window buckets are ~¼MB per class: only materialized
            // when a controller actually harvests them.
            win: if collect_window {
                (0..classes).map(|_| WindowHistogram::new()).collect()
            } else {
                Vec::new()
            },
            collect_window,
            batch_pool: Vec::new(),
            m_active: {
                let mut m = CoreMask::new(cfg.cores);
                for i in 0..cfg.cores {
                    m.set(i);
                }
                m
            },
            m_busy: CoreMask::new(cfg.cores),
            m_inapp: CoreMask::new(cfg.cores),
            m_ring: CoreMask::new(cfg.cores),
            m_shuffle: CoreMask::new(cfg.cores),
            m_bg: CoreMask::new(cfg.cores),
            m_remote: CoreMask::new(cfg.cores),
            m_ipi: CoreMask::new(cfg.cores),
            m_run_pending: CoreMask::new(cfg.cores),
            cfg,
            local_events: 0,
            stolen_events: 0,
            ipis_delivered: 0,
            preemptions: 0,
            busy: BusyMeter::default(),
            fg_busy: BusyMeter::default(),
        }
    }

    /// True when the model arms the periodic `Control` tick.
    pub(crate) fn has_control_plane(&self) -> bool {
        self.elastic.is_some() || self.admission.is_some()
    }

    /// True when the periodic `Control` tick must be armed: a control
    /// plane is present, or the telemetry config asked for time-series
    /// (the harvest rides the same tick, so telemetry alone arms it).
    pub(crate) fn wants_control_tick(&self) -> bool {
        self.has_control_plane() || self.telem.as_ref().is_some_and(|t| !t.harvest.is_empty())
    }

    /// Publishes the requested time-series into the registry. Rides the
    /// control tick; rate series are deltas over the harvest interval.
    fn telem_harvest(&mut self, now: SimTime) {
        let Some(tl) = &mut self.telem else { return };
        if tl.harvest.is_empty() {
            return;
        }
        tl.tick += 1;
        if tl.tick % tl.series_every != 0 {
            return;
        }
        let t_us = now.as_micros_f64();
        let dt_s = (now.as_nanos() - tl.last_t_ns) as f64 / 1e9;
        if dt_s <= 0.0 {
            return;
        }
        if let Some(id) = tl.s_admitted {
            let total: u64 = self.admitted_by_class.iter().sum();
            tl.reg
                .push(id, t_us, (total - tl.last_admitted) as f64 / dt_s);
            tl.last_admitted = total;
        }
        if let Some(id) = tl.s_credits {
            let cap = self.admission.as_ref().map_or(0.0, |p| p.capacity() as f64);
            tl.reg.push(id, t_us, cap);
        }
        if let Some(id) = tl.s_active {
            let active: u32 = self.m_active.w.iter().map(|w| w.count_ones()).sum();
            tl.reg.push(id, t_us, active as f64);
        }
        for c in 0..tl.s_shed.len() {
            let id = tl.s_shed[c];
            let total = self.rejected_by_class[c];
            tl.reg
                .push(id, t_us, (total - tl.last_rejected[c]) as f64 / dt_s);
            tl.last_rejected[c] = total;
        }
        if let Some(id) = tl.s_window_p99 {
            // NaN windows (too few samples to call a tail) are skipped
            // rather than recorded: a gap is honest, a zero is a lie.
            if tl.last_window_tail.is_finite() {
                tl.reg.push(id, t_us, tl.last_window_tail);
            }
        }
        if let Some(id) = tl.s_retry {
            tl.reg
                .push(id, t_us, (self.retries - tl.last_retries) as f64 / dt_s);
            tl.last_retries = self.retries;
        }
        tl.last_t_ns = now.as_nanos();
    }

    /// Accounts a `Core::work` presence transition at `now` (`delta` is +1
    /// for install, −1 for removal, 0 to flush the integrals; `fg` is
    /// false only for background application chunks).
    fn note_busy(&mut self, now: SimTime, delta: i64, fg: bool) {
        self.busy.update(now.as_nanos(), delta);
        self.fg_busy
            .update(now.as_nanos(), if fg { delta } else { 0 });
    }

    /// The core that serves packets homed on `home` (identity unless the
    /// home core is parked and its RSS queue was redirected).
    fn serving_core(&self, home: usize) -> usize {
        match &self.elastic {
            Some(e) => e.redirect[home],
            None => home,
        }
    }

    /// Spends a credit for an arriving request of `conn`'s tenant class
    /// (weighted fair shedding: looser classes are capped at a smaller
    /// pool share and shed first). `true` when admission is off or a
    /// credit was granted.
    fn gate_admit(&mut self, conn: u32) -> bool {
        let Some(pool) = &mut self.admission else {
            return true;
        };
        let class = self.cfg.slo.as_ref().map_or(0, |t| t.class_of(conn));
        if pool.try_admit_weighted(class, self.admit_fractions[class]) {
            self.admitted_by_class[class] += 1;
            true
        } else {
            self.rejected_by_class[class] += 1;
            false
        }
    }

    /// Arms the client timeout for `attempt` of `req` at its send time
    /// (no-op unless both a retry policy and a timeout are configured).
    /// The map entry makes this the request's *live* attempt; any older
    /// `Timeout` event still in the queue is thereby stale.
    fn arm_timeout(&mut self, req: Req, attempt: u32, now: SimTime, sched: &mut Scheduler<Ev>) {
        if let Some(t) = self.timeout_dur {
            self.retry_live.insert(req.seq, attempt);
            sched.at(now + t, Ev::Timeout { req, attempt });
        }
    }

    /// Feeds one shed or timed-out attempt to the retry policy — the
    /// closed loop's single entry point. `notify_delay` is how long the
    /// *client* takes to learn of the failure (zero for a local shed or
    /// timeout, half an RTT for a server-edge reject); the re-issue, if
    /// any, fires `notify_delay + backoff` from `now` and re-enters the
    /// full admission path via [`Ev::Retry`]. Does nothing (and touches
    /// no counter) when no policy is armed, keeping the open-loop world
    /// bit-identical.
    fn feed_retry(
        &mut self,
        req: Req,
        attempt: u32,
        now: SimTime,
        notify_delay: SimDuration,
        sched: &mut Scheduler<Ev>,
    ) {
        let Some(policy) = self.cfg.retry else { return };
        let noticed = now + notify_delay;
        let elapsed_us = noticed.duration_since(req.send).as_micros_f64() as u64;
        let decision = if self.cfg.retry_jitter {
            policy.on_shed_jittered(
                attempt,
                elapsed_us,
                conn_key(self.cfg.seed, req.conn as usize),
            )
        } else {
            policy.on_shed(attempt, elapsed_us)
        };
        let delay_us = match decision {
            RetryDecision::GiveUp => {
                self.give_ups += 1;
                return;
            }
            RetryDecision::RetryNow => 0,
            RetryDecision::RetryAfterUs(d) => d,
        };
        self.retries += 1;
        let at = noticed + SimDuration::from_micros_f64(delay_us as f64);
        sched.at(
            at,
            Ev::Retry {
                req,
                attempt: attempt + 1,
            },
        );
    }

    /// Issues (or re-issues) `req` as transmission `attempt`: the same
    /// client-side gating the original send went through, plus timeout
    /// arming. A client-side shed feeds straight back into the policy.
    fn issue(&mut self, req: Req, attempt: u32, now: SimTime, sched: &mut Scheduler<Ev>) {
        let client_gated = self.cfg.admission_mode != AdmissionMode::ServerEdge;
        if !client_gated || self.gate_admit(req.conn) {
            if client_gated && self.admission.is_some() {
                self.trace(req.home, req.seq, TraceKind::Admit, now);
            }
            self.arm_timeout(req, attempt, now, sched);
            sched.after(self.source.half_rtt, Ev::Packet(req, attempt));
        } else {
            self.trace(req.home, req.seq, TraceKind::Shed, now);
            self.feed_retry(req, attempt, now, SimDuration::ZERO, sched);
        }
    }

    /// Records one lifecycle trace point (one untaken branch when
    /// telemetry is off or tracing was not requested).
    #[inline]
    fn trace(&mut self, core: u16, seq: u32, kind: TraceKind, t: SimTime) {
        if let Some(tl) = &mut self.telem {
            if tl.trace_on {
                tl.tracer.record(core, seq, kind, t.as_nanos());
            }
        }
    }

    /// Records a completed request: recorder, credit return, and the
    /// control window's per-class latency sample.
    fn complete_req(&mut self, req: &Req, tx_time: SimTime) {
        if self.timeout_dur.is_some() {
            // The logical request is answered (by whichever attempt got
            // here first): any pending timeout for it becomes stale.
            self.retry_live.remove(&req.seq);
        }
        let measured = self.rec.complete(req, tx_time);
        if measured {
            // Trace exactly the histogram's population, timestamped at the
            // client's observation (send → client_rx = the recorded
            // latency), so trace-derived tails match the report's.
            let client_rx = tx_time + self.source.half_rtt;
            self.trace(req.home, req.seq, TraceKind::Completion, client_rx);
        }
        let class = self.cfg.slo.as_ref().map_or(0, |t| t.class_of(req.conn));
        if let Some(pool) = &mut self.admission {
            pool.release_class(class);
        }
        if self.collect_window {
            let client_rx = tx_time + self.source.half_rtt;
            let lat_ns = client_rx.duration_since(req.send).as_nanos();
            self.win[class].record_nanos(lat_ns);
        }
    }

    /// Wakes every idle granted core (something steal-able appeared).
    /// Cores with a run already queued are skipped (see `m_run_pending`).
    fn wake_idle(&mut self, sched: &mut Scheduler<Ev>) {
        for wi in 0..self.m_active.w.len() {
            let mut bits = self.m_active.w[wi] & !self.m_busy.w[wi] & !self.m_run_pending.w[wi];
            while bits != 0 {
                let i = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                debug_assert!(self.cores[i].active && self.cores[i].is_idle());
                self.m_run_pending.set(i);
                sched.at(sched.now(), Ev::Run(i));
            }
        }
    }

    /// Wakes one core if granted, idle, and not already woken.
    fn wake(&mut self, core: usize, sched: &mut Scheduler<Ev>) {
        if self.m_active.test(core) && !self.m_busy.test(core) && !self.m_run_pending.test(core) {
            self.m_run_pending.set(core);
            sched.at(sched.now(), Ev::Run(core));
        }
    }

    /// Sends an IPI to `target` if one is not already in flight.
    fn send_ipi(&mut self, target: usize, sched: &mut Scheduler<Ev>) {
        if !self.cores[target].ipi_pending {
            self.cores[target].ipi_pending = true;
            self.m_ipi.set(target);
            sched.after(ns(self.cfg.cost.ipi_delivery_ns), Ev::Ipi(target));
        }
    }

    /// Whether the ladder includes the IPI-scan rung.
    fn ipis_enabled(&self) -> bool {
        self.ladder.contains(&Rung::IpiScan)
    }

    /// Enqueues a preempted remainder on `home`'s background queue per the
    /// policy's ordering discipline.
    fn bg_enqueue(&mut self, home: usize, entry: BgEntry) {
        self.m_bg.set(home);
        let q = &mut self.cores[home].bg;
        match self.dispatch.background_order() {
            BackgroundOrder::Fcfs => q.push_back(entry),
            BackgroundOrder::Srpt => {
                // Keep the least-remaining entry at the front. Stable on
                // ties (insert after equal keys) to preserve arrival order.
                let at = q.partition_point(|e| e.remaining_ns <= entry.remaining_ns);
                q.insert(at, entry);
            }
        }
    }

    /// Applies RX-batch effects: packets join their connections' event
    /// queues; idle connections become ready on this core's shuffle queue.
    /// The batch buffer is drained and recycled through the pool.
    fn apply_net_batch(&mut self, core: usize, mut batch: Vec<Req>, sched: &mut Scheduler<Ev>) {
        // In elastic mode the executing core may have been parked while
        // this net chunk was in flight (apply_allocation drains queues
        // only on the transition): enqueue on its serving core, or the
        // ready connections would be stranded on a queue nothing scans.
        let dst = self.serving_core(core);
        let mut newly_ready = false;
        for req in batch.drain(..) {
            let conn = &mut self.conns[req.conn as usize];
            conn.pending.push_back(req);
            if conn.st == ConnSt::Idle {
                conn.st = ConnSt::Ready;
                self.cores[dst].shuffle.push_back(req.conn);
                newly_ready = true;
            }
        }
        self.batch_pool.push(batch);
        if newly_ready {
            self.m_shuffle.set(dst);
            // Ready connections are steal-able: every idle core may act.
            self.wake_idle(sched);
        }
    }

    /// Begins executing an application event batch for `conn` on `core`.
    #[allow(clippy::too_many_arguments)]
    fn begin_app(
        &mut self,
        core: usize,
        conn: u32,
        extra_ns: u64,
        stolen: bool,
        bg: bool,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let c = &mut self.conns[conn as usize];
        debug_assert_eq!(c.st, ConnSt::Busy);
        let mut events = std::mem::take(&mut c.pending);
        debug_assert!(!events.is_empty(), "ready connection without events");
        let cur = events.pop_front().expect("non-empty");
        self.schedule_app_chunk(core, conn, cur, events, stolen, bg, extra_ns, now, sched);
    }

    /// Installs one application chunk on `core` and schedules its end event
    /// — `WorkDone` at completion, or `Preempt` at quantum expiry when the
    /// policy decides to slice the chunk.
    #[allow(clippy::too_many_arguments)]
    fn schedule_app_chunk(
        &mut self,
        core: usize,
        conn: u32,
        mut cur: Req,
        rest: VecDeque<Req>,
        stolen: bool,
        bg: bool,
        extra_ns: u64,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        self.trace(core as u16, cur.seq, TraceKind::Dispatch, now);
        self.note_busy(now, 1, !bg);
        self.m_busy.set(core);
        self.m_inapp.set(core);
        let slice = self.dispatch.slice(cur.service.as_nanos());
        let core_ref = &mut self.cores[core];
        core_ref.epoch += 1;
        let epoch = core_ref.epoch;
        match slice {
            Some(s) => {
                // Run one quantum of service, then take the timer interrupt
                // (charged at the calibrated context save/restore cost) and
                // requeue the rest. The completion syscalls are not issued
                // by a preempted slice, so only the dispatch cost applies
                // on this chunk.
                cur.service = SimDuration::from_nanos(s.run_ns);
                let dur = self.cfg.cost.event_dispatch_ns
                    + s.run_ns
                    + self.cfg.cost.ctx_save_restore_ns
                    + extra_ns;
                let core_ref = &mut self.cores[core];
                core_ref.slice_remaining_ns = s.remaining_ns;
                core_ref.work = Some(Work::App {
                    conn,
                    cur,
                    rest,
                    stolen,
                    bg,
                });
                core_ref.end = now + ns(dur);
                sched.at(core_ref.end, Ev::Preempt { core, epoch });
            }
            None => {
                let dur = self.event_exec_ns(&cur, stolen) + extra_ns;
                let core_ref = &mut self.cores[core];
                core_ref.slice_remaining_ns = 0;
                core_ref.work = Some(Work::App {
                    conn,
                    cur,
                    rest,
                    stolen,
                    bg,
                });
                core_ref.end = now + ns(dur);
                sched.at(core_ref.end, Ev::WorkDone { core, epoch });
            }
        }
    }

    /// CPU time of one application event on its execution core.
    ///
    /// Home execution transmits inline (eager TX, §6.2); stolen execution
    /// ships its syscalls home instead (the shipping enqueue is folded into
    /// the home core's `remote_syscall_ns`).
    fn event_exec_ns(&self, req: &Req, stolen: bool) -> u64 {
        let c = &self.cfg.cost;
        let mut ns = c.event_dispatch_ns + req.service.as_nanos() + c.syscall_batch_ns;
        if !stolen {
            ns += c.stack_tx_per_msg_ns;
        }
        ns
    }

    /// The core scheduling loop: tries each rung of the shared dispatch
    /// ladder in policy order and takes the first that yields work.
    fn run_core(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if !self.cores[core].active {
            return; // Parked by the elastic controller; queues were drained.
        }
        if self.cores[core].work.is_some() {
            return; // Busy; it will rerun at WorkDone.
        }
        // Victim order is (re)shuffled at most once per loop entry, by the
        // first rung that actually scans other cores (sweeps whose
        // occupancy mask is empty skip both the walk and the shuffle), and
        // shared by the rest.
        let mut victims_ready = false;
        for i in 0..self.ladder.len() {
            let took = match self.ladder[i] {
                Rung::RemoteSyscalls => self.rung_remote_tx(core, now, sched),
                Rung::AgedBackground => self.rung_aged_bg(core, now, sched),
                Rung::LocalReady => self.rung_local_ready(core, now, sched),
                Rung::LocalNet => self.rung_local_net(core, now, sched),
                Rung::StealReady => self.rung_steal_ready(core, now, sched, &mut victims_ready),
                Rung::LocalBackground => self.rung_local_bg(core, now, sched),
                Rung::StealBackground => self.rung_steal_bg(core, now, sched, &mut victims_ready),
                Rung::IpiScan => {
                    self.rung_ipi_scan(core, sched, &mut victims_ready);
                    false // The scan kicks another core; this one stays idle.
                }
            };
            if took {
                return;
            }
        }
        // Idle. Woken by wake()/wake_idle() on any actionable change.
    }

    /// Shuffles the victim scan order once per scheduling-loop entry (when
    /// the policy asks for randomization). Runs on the dedicated
    /// victim-order RNG, so the workload stream is untouched.
    fn prepare_victims(&mut self, ready: &mut bool) {
        if !*ready {
            if self.dispatch.randomize_victims() {
                self.victims_rng.shuffle(&mut self.victims);
            }
            *ready = true;
        }
    }

    /// Remote syscalls (TX for stolen executions): they hold finished
    /// responses.
    fn rung_remote_tx(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) -> bool {
        if self.cores[core].remote_sys.is_empty() {
            return false;
        }
        let per_msg = self.cfg.cost.remote_syscall_ns + self.cfg.cost.stack_tx_per_msg_ns;
        let spare = self.batch_pool.pop().unwrap_or_default();
        let batch = std::mem::replace(&mut self.cores[core].remote_sys, spare);
        self.m_remote.clear(core);
        let dur = per_msg * batch.len() as u64;
        self.note_busy(now, 1, true);
        self.m_busy.set(core);
        let c = &mut self.cores[core];
        c.work = Some(Work::RemoteTx { batch });
        c.epoch += 1;
        c.end = now + ns(dur);
        sched.at(
            c.end,
            Ev::WorkDone {
                core,
                epoch: c.epoch,
            },
        );
        true
    }

    /// Aged background connection: a preempted remainder past the policy's
    /// aging bound outranks fresh work.
    fn rung_aged_bg(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) -> bool {
        let age_bound = self.dispatch.background_aging_ns();
        if age_bound == u64::MAX || !self.m_bg.test(core) {
            return false;
        }
        let bound = ns(age_bound);
        // Promote the oldest aged entry. Even under FCFS the front is not
        // guaranteed oldest: apply_allocation's park-time drain appends a
        // parked core's entries behind the target's regardless of age, and
        // SRPT orders by remaining time — so scan (queues are short).
        let idx = self.cores[core]
            .bg
            .iter()
            .enumerate()
            .filter(|(_, e)| now.duration_since(e.since) >= bound)
            .min_by_key(|(_, e)| e.since)
            .map(|(i, _)| i);
        let Some(idx) = idx else {
            return false;
        };
        let entry = self.cores[core].bg.remove(idx).expect("index valid");
        if self.cores[core].bg.is_empty() {
            self.m_bg.clear(core);
        }
        debug_assert_eq!(self.conns[entry.conn as usize].st, ConnSt::Ready);
        self.conns[entry.conn as usize].st = ConnSt::Busy;
        // Promoted by aging: overdue work is foreground demand.
        let extra = self.cfg.cost.shuffle_op_ns;
        self.begin_app(core, entry.conn, extra, false, false, now, sched);
        true
    }

    /// Own shuffle queue.
    fn rung_local_ready(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) -> bool {
        let Some(conn) = self.cores[core].shuffle.pop_front() else {
            return false;
        };
        if self.cores[core].shuffle.is_empty() {
            self.m_shuffle.clear(core);
        }
        debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
        self.conns[conn as usize].st = ConnSt::Busy;
        let extra = self.cfg.cost.shuffle_op_ns;
        self.begin_app(core, conn, extra, false, false, now, sched);
        true
    }

    /// Own NIC ring: run the network stack over a bounded batch.
    fn rung_local_net(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) -> bool {
        if self.cores[core].ring.is_empty() {
            return false;
        }
        let fixed = self.cfg.cost.driver_batch_fixed_ns;
        let per_pkt = self.cfg.cost.driver_per_pkt_ns + self.cfg.cost.stack_rx_per_pkt_ns;
        let k = (self.cores[core].ring.len() as u64).min(self.cfg.rx_batch.max(1));
        let mut batch = self.batch_pool.pop().unwrap_or_default();
        batch.extend(self.cores[core].ring.drain(..k as usize));
        if self.cores[core].ring.is_empty() {
            self.m_ring.clear(core);
        }
        let dur = fixed + k * per_pkt;
        self.note_busy(now, 1, true);
        self.m_busy.set(core);
        let c = &mut self.cores[core];
        c.work = Some(Work::Net { batch });
        c.epoch += 1;
        c.end = now + ns(dur);
        sched.at(
            c.end,
            Ev::WorkDone {
                core,
                epoch: c.epoch,
            },
        );
        true
    }

    /// Steal a ready connection from another core's shuffle queue.
    fn rung_steal_ready(
        &mut self,
        core: usize,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        victims_ready: &mut bool,
    ) -> bool {
        if !self.dispatch.may_steal(true) {
            return false;
        }
        if !any_other(&self.m_active, &self.m_shuffle, core) {
            return false; // Nothing stealable anywhere: skip the walk.
        }
        self.prepare_victims(victims_ready);
        let mut stolen_conn = None;
        for idx in 0..self.victims.len() {
            let v = self.victims[idx];
            if v == core || !self.m_active.test(v) || !self.m_shuffle.test(v) {
                continue;
            }
            let conn = self.cores[v].shuffle.pop_front().expect("mask says ready");
            if self.cores[v].shuffle.is_empty() {
                self.m_shuffle.clear(v);
            }
            stolen_conn = Some(conn);
            break;
        }
        let Some(conn) = stolen_conn else {
            return false;
        };
        debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
        self.conns[conn as usize].st = ConnSt::Busy;
        if self.telem.is_some() {
            // The stolen batch's first request (`begin_app` pops it next).
            if let Some(seq) = self.conns[conn as usize].pending.front().map(|r| r.seq) {
                self.trace(core as u16, seq, TraceKind::Steal, now);
            }
        }
        let extra = self.cfg.cost.shuffle_op_ns + self.cfg.cost.steal_extra_ns;
        self.begin_app(core, conn, extra, true, false, now, sched);
        true
    }

    /// Own background (preempted) queue. It runs only when no fresh work
    /// is visible anywhere: a quantum-expired request is known long, and
    /// deferring it behind everything short is the approximate-SJF move
    /// that bounds the dispersive tail (Shinjuku's two-level queue).
    fn rung_local_bg(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) -> bool {
        let Some(entry) = self.cores[core].bg.pop_front() else {
            return false;
        };
        if self.cores[core].bg.is_empty() {
            self.m_bg.clear(core);
        }
        debug_assert_eq!(self.conns[entry.conn as usize].st, ConnSt::Ready);
        self.conns[entry.conn as usize].st = ConnSt::Busy;
        let extra = self.cfg.cost.shuffle_op_ns;
        self.begin_app(core, entry.conn, extra, false, true, now, sched);
        true
    }

    /// Steal a background entry from another core.
    fn rung_steal_bg(
        &mut self,
        core: usize,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        victims_ready: &mut bool,
    ) -> bool {
        if !self.dispatch.may_steal(true) {
            return false;
        }
        if !any_other(&self.m_active, &self.m_bg, core) {
            return false; // Nothing stealable anywhere: skip the walk.
        }
        self.prepare_victims(victims_ready);
        let mut found = None;
        for idx in 0..self.victims.len() {
            let v = self.victims[idx];
            if v == core || !self.m_active.test(v) || !self.m_bg.test(v) {
                continue;
            }
            let entry = self.cores[v].bg.pop_front().expect("mask says ready");
            if self.cores[v].bg.is_empty() {
                self.m_bg.clear(v);
            }
            found = Some(entry);
            break;
        }
        let Some(entry) = found else {
            return false;
        };
        debug_assert_eq!(self.conns[entry.conn as usize].st, ConnSt::Ready);
        self.conns[entry.conn as usize].st = ConnSt::Busy;
        if self.telem.is_some() {
            if let Some(seq) = self.conns[entry.conn as usize]
                .pending
                .front()
                .map(|r| r.seq)
            {
                self.trace(core as u16, seq, TraceKind::Steal, now);
            }
        }
        let extra = self.cfg.cost.shuffle_op_ns + self.cfg.cost.steal_extra_ns;
        self.begin_app(core, entry.conn, extra, true, true, now, sched);
        true
    }

    /// Scan remote NIC rings; IPI home cores stuck in application code
    /// ("aggressively sends interrupts as soon as a remote core detects a
    /// pending packet in the hardware queue and the home core is executing
    /// at user-level", §5).
    fn rung_ipi_scan(&mut self, core: usize, sched: &mut Scheduler<Ev>, victims_ready: &mut bool) {
        if !any_other(&self.m_ring, &self.m_inapp, core) {
            return; // No undrained ring under an app chunk anywhere.
        }
        self.prepare_victims(victims_ready);
        let mut target = None;
        for idx in 0..self.victims.len() {
            let v = self.victims[idx];
            if v == core || !self.m_active.test(v) {
                continue;
            }
            if self.m_ring.test(v) && self.m_inapp.test(v) && !self.m_ipi.test(v) {
                debug_assert!(!self.cores[v].ring.is_empty() && self.cores[v].in_app());
                target = Some(v);
                break;
            }
        }
        if let Some(v) = target {
            self.send_ipi(v, sched);
        }
    }

    fn work_done(&mut self, core: usize, epoch: u64, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.cores[core].epoch != epoch {
            return; // Invalidated by an IPI extension.
        }
        let work = self.cores[core]
            .work
            .take()
            .expect("work present at WorkDone");
        let was_bg = matches!(work, Work::App { bg: true, .. });
        self.note_busy(now, -1, !was_bg);
        self.m_busy.clear(core);
        self.m_inapp.clear(core);
        match work {
            Work::Net { batch } => {
                self.apply_net_batch(core, batch, sched);
            }
            Work::RemoteTx { mut batch } => {
                for req in batch.drain(..) {
                    self.complete_req(&req, now);
                }
                self.batch_pool.push(batch);
            }
            Work::App {
                conn,
                cur,
                mut rest,
                stolen,
                bg,
            } => {
                if stolen {
                    self.stolen_events += 1;
                    self.trace(core as u16, cur.seq, TraceKind::StolenDone, now);
                    // Ship the response home; the home core (or, in
                    // elastic mode, whichever core serves its queues)
                    // transmits.
                    let home = self.serving_core(cur.home as usize);
                    self.cores[home].remote_sys.push(cur);
                    self.m_remote.set(home);
                    if self.cores[home].is_idle() {
                        self.wake(home, sched);
                    } else if self.ipis_enabled() && self.cores[home].in_app() {
                        self.send_ipi(home, sched);
                    }
                } else {
                    self.local_events += 1;
                    self.complete_req(&cur, now);
                }
                if let Some(next) = rest.pop_front() {
                    // Continue the connection's event batch (implicit
                    // per-flow batching, §6.2).
                    self.schedule_app_chunk(core, conn, next, rest, stolen, bg, 0, now, sched);
                    return;
                }
                // Batch finished: Figure 5 transition out of busy.
                let connref = &mut self.conns[conn as usize];
                if connref.pending.is_empty() {
                    connref.st = ConnSt::Idle;
                    // Recycle the exhausted batch buffer as the
                    // connection's next pending queue.
                    connref.pending = rest;
                } else {
                    connref.st = ConnSt::Ready;
                    let home = self.serving_core(self.source.home_of(conn) as usize);
                    self.cores[home].shuffle.push_back(conn);
                    self.m_shuffle.set(home);
                    self.wake_idle(sched);
                }
            }
        }
        // Re-enter the scheduling loop.
        self.run_core(core, now, sched);
    }

    /// Quantum expiry: requeue the remainder of the interrupted request on
    /// its serving core's background queue, behind any shorter requests
    /// that arrived meanwhile — the anti-head-of-line move.
    fn preempt(&mut self, core: usize, epoch: u64, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.cores[core].epoch != epoch {
            return; // Invalidated (e.g. an IPI extended the chunk).
        }
        let remaining = self.cores[core].slice_remaining_ns;
        self.cores[core].slice_remaining_ns = 0;
        let work = self.cores[core]
            .work
            .take()
            .expect("work present at Preempt");
        let was_bg = matches!(work, Work::App { bg: true, .. });
        self.note_busy(now, -1, !was_bg);
        self.m_busy.clear(core);
        self.m_inapp.clear(core);
        let Work::App {
            conn,
            mut cur,
            mut rest,
            ..
        } = work
        else {
            unreachable!("only application chunks are sliced");
        };
        debug_assert!(remaining > 0, "preempted chunk must have a remainder");
        self.preemptions += 1;
        self.trace(core as u16, cur.seq, TraceKind::Preempt, now);
        cur.service = SimDuration::from_nanos(remaining);
        // Requeue: the remainder stays the connection's oldest event (so
        // per-connection ordering holds), followed by the rest of the taken
        // batch, then anything that arrived during the slice. Reuses the
        // taken batch's buffer as the new pending queue.
        let seq = cur.seq;
        let connref = &mut self.conns[conn as usize];
        debug_assert_eq!(connref.st, ConnSt::Busy);
        let arrived = std::mem::take(&mut connref.pending);
        rest.push_front(cur);
        rest.extend(arrived);
        connref.pending = rest;
        connref.st = ConnSt::Ready;
        let home = self.serving_core(self.source.home_of(conn) as usize);
        self.trace(home as u16, seq, TraceKind::BgRequeue, now);
        self.bg_enqueue(
            home,
            BgEntry {
                conn,
                since: now,
                remaining_ns: remaining,
            },
        );
        self.wake_idle(sched);
        // The interrupted core re-enters its scheduling loop (the handler
        // cost was charged inside the chunk).
        self.run_core(core, now, sched);
    }

    /// Harvests the control window: the worst per-class p99-vs-SLO ratio
    /// (for the SLO-driven allocator), the overall window tail in µs (for
    /// the untargeted credit AIMD; `NaN` when the window is too thin), and
    /// the worst per-class tail-vs-credit-target ratio (for the SLO-driven
    /// credit AIMD; `NaN` likewise).
    fn window_signal(&mut self) -> (Option<f64>, f64, f64) {
        let ratio = self
            .cfg
            .slo
            .as_ref()
            .and_then(|slo| slo.worst_ratio_hist(&mut self.win, MIN_WINDOW_SAMPLES));
        let credit_ratio = if self.credit_targets_us.is_empty() {
            f64::NAN
        } else {
            self.cfg
                .slo
                .as_ref()
                .expect("targets derive from slo")
                .worst_credit_ratio_hist(&mut self.win, &self.credit_targets_us, MIN_WINDOW_SAMPLES)
                .unwrap_or(f64::NAN)
        };
        // The untargeted window tail. Only the single-class configuration
        // consumes it (with tenant SLOs the AIMD runs on `credit_ratio`),
        // so the multi-class merge the old exact-sort path paid for is
        // gone.
        let tail_us = match &mut self.win[..] {
            [only] if only.count() >= MIN_WINDOW_SAMPLES as u64 => only.quantile_us(0.99),
            _ => f64::NAN,
        };
        for w in &mut self.win {
            w.clear();
        }
        (ratio, tail_us, credit_ratio)
    }

    /// Debug-build invariant: every occupancy mask mirrors the core state
    /// it accelerates. Cheap enough to run per control tick in tests.
    #[cfg(debug_assertions)]
    fn debug_check_masks(&self) {
        for (i, c) in self.cores.iter().enumerate() {
            debug_assert_eq!(self.m_active.test(i), c.active, "active mask, core {i}");
            debug_assert_eq!(self.m_busy.test(i), c.work.is_some(), "busy mask, core {i}");
            debug_assert_eq!(self.m_inapp.test(i), c.in_app(), "in-app mask, core {i}");
            debug_assert_eq!(self.m_ipi.test(i), c.ipi_pending, "ipi mask, core {i}");
            debug_assert_eq!(
                self.m_ring.test(i),
                !c.ring.is_empty(),
                "ring mask, core {i}"
            );
            debug_assert_eq!(
                self.m_shuffle.test(i),
                !c.shuffle.is_empty(),
                "shuffle mask, core {i}"
            );
            debug_assert_eq!(self.m_bg.test(i), !c.bg.is_empty(), "bg mask, core {i}");
            debug_assert_eq!(
                self.m_remote.test(i),
                !c.remote_sys.is_empty(),
                "remote mask, core {i}"
            );
        }
    }

    /// Control tick: harvest the window, drive the allocation policy (if
    /// elastic) and the credit AIMD (if admitting), reschedule.
    fn control(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        #[cfg(debug_assertions)]
        self.debug_check_masks();
        let (slo_ratio, tail_us, credit_ratio) = self.window_signal();
        if let Some(tl) = &mut self.telem {
            tl.last_window_tail = tail_us;
        }
        let slo_targeted = !self.credit_targets_us.is_empty();
        if let Some(pool) = &mut self.admission {
            if slo_targeted {
                // Per-tenant-class targets derived from the SLO bounds:
                // 1.0 means the worst class sits exactly at its target.
                pool.update_ratio(credit_ratio);
            } else {
                pool.update(tail_us);
            }
        }
        self.note_busy(now, 0, true); // Flush the busy integrals up to `now`.
        let busy_integral = self.fg_busy.integral_ns;
        let fg_count = self.fg_busy.count;
        if self.elastic.is_some() {
            // Utilization, time-averaged since the previous tick:
            // instantaneous busy-core counts swing wildly under bursty
            // Poisson arrivals.
            let elastic = self.elastic.as_mut().expect("checked");
            let dt = now.as_nanos() - elastic.last_ctl_ns;
            let busy = if dt == 0 {
                fg_count as f64
            } else {
                (busy_integral - elastic.last_ctl_busy_integral) as f64 / dt as f64
            };
            elastic.last_ctl_busy_integral = busy_integral;
            elastic.last_ctl_ns = now.as_nanos();
            // Backlog = work waiting involuntarily. Un-aged background
            // entries are deferred *by policy* (they run in idle gaps) and
            // would otherwise read as queue pressure that blocks parking at
            // low load; only overdue (aged) entries count.
            let age_bound = self.dispatch.background_aging_ns();
            let bound = if age_bound == u64::MAX {
                None
            } else {
                Some(ns(age_bound))
            };
            let mut backlog = 0;
            for c in &self.cores {
                if c.active {
                    backlog += c.ring.len() + c.shuffle.len() + c.remote_sys.len();
                    if let Some(b) = bound {
                        backlog +=
                            c.bg.iter()
                                .filter(|e| now.duration_since(e.since) >= b)
                                .count();
                    }
                }
            }
            let elastic = self.elastic.as_mut().expect("checked");
            let decision = elastic.allocator.observe(&PolicySignal {
                busy_cores: busy,
                backlog,
                slo_ratio,
            });
            if elastic.trace {
                eprintln!(
                    "ctl t={:.0}us busy={busy:.2} backlog={backlog} ratio={slo_ratio:?} [{}] active={} -> {decision:?}",
                    now.as_micros_f64(),
                    elastic.allocator.describe(),
                    elastic.allocator.active(),
                );
            }
            let target = elastic.allocator.active();
            if decision != Decision::Hold {
                self.apply_allocation(target, now, sched);
            }
        }
        self.telem_harvest(now);
        sched.after(self.ctl_period, Ev::Control);
    }

    /// Reconfigures the data plane to `target` granted cores: cores
    /// `[0, target)` are active, the rest park after draining their queues
    /// into an active core (modeling RSS indirection-table reprogramming
    /// plus queue migration — both controller-side, off the data path).
    fn apply_allocation(&mut self, target: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        let n = self.cores.len();
        for i in 0..n {
            let was = self.cores[i].active;
            self.cores[i].active = i < target;
            self.m_active.put(i, i < target);
            if was && !self.cores[i].active {
                // Drain a newly parked core into its redirect target.
                let dst = i % target;
                let ring: Vec<Req> = self.cores[i].ring.drain(..).collect();
                let shuffle: Vec<u32> = self.cores[i].shuffle.drain(..).collect();
                let bg: Vec<BgEntry> = self.cores[i].bg.drain(..).collect();
                let remote: Vec<Req> = self.cores[i].remote_sys.drain(..).collect();
                self.m_ring.clear(i);
                self.m_shuffle.clear(i);
                self.m_bg.clear(i);
                self.m_remote.clear(i);
                if !ring.is_empty() {
                    self.m_ring.set(dst);
                }
                if !shuffle.is_empty() {
                    self.m_shuffle.set(dst);
                }
                if !remote.is_empty() {
                    self.m_remote.set(dst);
                }
                self.cores[dst].ring.extend(ring);
                self.cores[dst].shuffle.extend(shuffle);
                for entry in bg {
                    self.bg_enqueue(dst, entry);
                }
                self.cores[dst].remote_sys.extend(remote);
                self.wake(dst, sched);
            } else if !was && self.cores[i].active {
                self.wake(i, sched);
            }
        }
        if let Some(e) = &mut self.elastic {
            for (home, slot) in e.redirect.iter_mut().enumerate() {
                *slot = if home < target { home } else { home % target };
            }
            e.meter.set_active(now.as_nanos(), target);
        }
    }

    fn ipi(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.cores[core].ipi_pending = false;
        self.m_ipi.clear(core);
        self.ipis_delivered += 1;
        if !self.cores[core].in_app() {
            // Not in user code: the loop will find the work itself.
            self.wake(core, sched);
            return;
        }
        let cost = self.cfg.cost.clone();
        let mut ext_ns = cost.ipi_handler_ns;
        // Handler duty 1: replenish the shuffle queue if it ran dry.
        if self.cores[core].shuffle.is_empty() && !self.cores[core].ring.is_empty() {
            let k = (self.cores[core].ring.len() as u64).min(self.cfg.rx_batch.max(1));
            let mut batch = self.batch_pool.pop().unwrap_or_default();
            batch.extend(self.cores[core].ring.drain(..k as usize));
            if self.cores[core].ring.is_empty() {
                self.m_ring.clear(core);
            }
            ext_ns += cost.driver_batch_fixed_ns
                + k * (cost.driver_per_pkt_ns + cost.stack_rx_per_pkt_ns);
            self.apply_net_batch(core, batch, sched);
        }
        // Handler duty 2: flush remote syscalls / transmit.
        if !self.cores[core].remote_sys.is_empty() {
            let spare = self.batch_pool.pop().unwrap_or_default();
            let mut batch = std::mem::replace(&mut self.cores[core].remote_sys, spare);
            self.m_remote.clear(core);
            ext_ns += (cost.remote_syscall_ns + cost.stack_tx_per_msg_ns) * batch.len() as u64;
            let tx_at = now + ns(cost.ipi_handler_ns);
            for req in batch.drain(..) {
                self.complete_req(&req, tx_at);
            }
            self.batch_pool.push(batch);
        }
        // The interrupted application event finishes later by the handler's
        // execution time: invalidate and reschedule its completion (or its
        // quantum expiry, if the chunk is a preemption slice).
        let ext = ns(ext_ns);
        let c = &mut self.cores[core];
        c.end += ext;
        c.epoch += 1;
        let (end, epoch) = (c.end, c.epoch);
        if c.slice_remaining_ns > 0 {
            sched.at(end, Ev::Preempt { core, epoch });
        } else {
            sched.at(end, Ev::WorkDone { core, epoch });
        }
    }

    /// Total queued requests over the active cores: NIC rings, ready
    /// connections on shuffle queues, preempted background entries, and
    /// pending remote syscalls. This is the importance-splitting level
    /// function — a trajectory's backlog crossing a threshold is the
    /// rare-event precursor the RESTART estimator splits on (see
    /// `docs/TAIL.md`).
    /// The configuration this model was built (or last retargeted) with.
    pub(crate) fn cfg(&self) -> &SysConfig {
        &self.cfg
    }

    /// True once the recorder reached its completion target.
    pub(crate) fn is_done(&self) -> bool {
        self.rec.is_done()
    }

    pub(crate) fn backlog(&self) -> usize {
        self.cores
            .iter()
            .filter(|c| c.active)
            .map(|c| c.ring.len() + c.shuffle.len() + c.bg.len() + c.remote_sys.len())
            .sum()
    }

    /// Arms per-completion sample collection on the recorder (importance
    /// splitting weights individual samples; the histogram cannot).
    pub(crate) fn arm_tail_sampling(&mut self) {
        self.rec.arm_tail_sampling();
    }

    /// Drains the per-completion samples collected since the last drain.
    pub(crate) fn drain_tail(&mut self) -> Vec<u64> {
        self.rec.drain_tail()
    }

    /// Forks the stochastic streams onto an independent substream:
    /// importance-splitting clones diverge from the master trajectory at
    /// the split point, while the master keeps the original streams (so
    /// the master's own path is identical to the brute-force run's).
    pub(crate) fn fork_streams(&mut self, stream: u64) {
        self.source.fork_rng(stream);
        self.victims_rng = self.victims_rng.fork(stream ^ 0x0054_4149_4C53_504C);
        // "TAILSPL"
    }

    /// Splices a fresh measurement run onto this converged world: the new
    /// `cfg` (typically the same workload at a neighboring load) replaces
    /// the arrival rate and the recorder, and every *window statistic* —
    /// event counters, shed counts, latency windows, the core-seconds
    /// snapshot — is rewound to zero at `now`. Everything that is *world
    /// state* (queues, connection FSMs, RNG positions, credit capacity,
    /// allocator EWMAs, busy-time integrals the control plane diffs)
    /// carries over untouched: that converged state is exactly what the
    /// warm start is buying.
    pub(crate) fn retarget(&mut self, cfg: &SysConfig, now: SimTime, warmup: u64) {
        debug_assert_eq!(self.cfg.cores, cfg.cores, "warm start cannot restaff");
        debug_assert_eq!(self.cfg.conns, cfg.conns, "warm start cannot re-home");
        debug_assert!(cfg.telemetry.is_none(), "warm runs are telemetry-off");
        self.source.retarget(cfg);
        self.rec = Recorder::warm(cfg.requests, warmup, self.source.half_rtt, now);
        self.cfg = cfg.clone();
        self.timeout_dur = match (self.cfg.retry, self.cfg.retry_timeout_us) {
            (Some(_), Some(t)) if t > 0.0 => Some(SimDuration::from_micros_f64(t)),
            _ => None,
        };
        self.local_events = 0;
        self.stolen_events = 0;
        self.ipis_delivered = 0;
        self.preemptions = 0;
        self.wire_rejects = 0;
        // Window statistics; `retry_live` is world state and carries over.
        self.retries = 0;
        self.give_ups = 0;
        self.timeouts_fired = 0;
        for v in &mut self.rejected_by_class {
            *v = 0;
        }
        for v in &mut self.admitted_by_class {
            *v = 0;
        }
        if let Some(pool) = &mut self.admission {
            pool.reset_stats();
        }
        for w in &mut self.win {
            w.clear();
        }
        if let Some(e) = &mut self.elastic {
            // Re-snapshot when the new window opens; the meter itself and
            // the busy-integral diff base stay continuous across the
            // splice (the control loop keeps running through it).
            e.meas_snapshot = None;
        }
    }

    pub(crate) fn into_output(mut self, final_time: SimTime, events: u64) -> SysOutput {
        self.note_busy(final_time, 0, true);
        if std::env::var_os("ZYGOS_ELASTIC_TRACE").is_some() {
            eprintln!(
                "run avg_busy={:.2} (fg {:.2}) over {:.0}us",
                self.busy.integral_ns as f64 / final_time.as_nanos().max(1) as f64,
                self.fg_busy.integral_ns as f64 / final_time.as_nanos().max(1) as f64,
                final_time.as_micros_f64()
            );
        }
        let sim_time_us = if self.rec.window_us() > 0.0 {
            self.rec.window_us()
        } else {
            final_time.as_micros_f64()
        };
        let avg_active_cores = match &self.elastic {
            // Average over the measurement window when we have its start
            // snapshot; otherwise over the whole run.
            Some(e) => match e.meas_snapshot {
                Some((t0, core_ns0)) if final_time.as_nanos() > t0 => {
                    (e.meter.core_ns(final_time.as_nanos()) - core_ns0) as f64
                        / (final_time.as_nanos() - t0) as f64
                }
                _ => e.meter.avg_cores(final_time.as_nanos(), 0),
            },
            None => self.cfg.cores as f64,
        };
        let (admitted, rejected) = self
            .admission
            .as_ref()
            .map_or((0, 0), |p| (p.admitted(), p.rejected()));
        let telemetry = self.telem.as_ref().map(|tl| TelemetryOut {
            events: tl.tracer.collect(),
            dropped: tl.tracer.dropped(),
            series: tl.reg.take_series(),
        });
        SysOutput {
            telemetry,
            latency: self.rec.latency.clone(),
            completed: self.rec.measured(),
            generated: self.source.emitted(),
            completed_total: self.rec.completed_total(),
            events,
            sim_time_us,
            local_events: self.local_events,
            stolen_events: self.stolen_events,
            ipis: self.ipis_delivered,
            preemptions: self.preemptions,
            avg_active_cores,
            admitted,
            rejected,
            wire_rejects: self.wire_rejects,
            rtt_us: self.cfg.cost.network_rtt_ns as f64 / 1_000.0,
            retries: self.retries,
            give_ups: self.give_ups,
            timeouts: self.timeouts_fired,
            rejected_by_class: self.rejected_by_class,
            admitted_by_class: self.admitted_by_class,
            stage_counts: Vec::new(),
            stage_p99_wait_us: Vec::new(),
        }
    }
}

impl Model for ZygosModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.rec.is_done() {
            // Defensive: the bottom-of-handler stop below fires on the
            // event that reached the target, so a running engine should
            // never pop another event — but a resumed engine whose
            // recorder was not replaced would.
            sched.stop();
            return;
        }
        if let Some(e) = &mut self.elastic {
            if e.meas_snapshot.is_none() && self.rec.measurement_started() {
                e.meas_snapshot = Some((now.as_nanos(), e.meter.core_ns(now.as_nanos())));
            }
        }
        match ev {
            Ev::Gen => {
                let req = self.source.next_req(now);
                self.trace(req.home, req.seq, TraceKind::Arrival, now);
                // Client-side credits: a creditless request is never sent —
                // the shed costs zero wire RTT (the sender-side half of
                // Breakwater, modelled at its converged state). A shed
                // feeds the retry policy (a no-op without one).
                self.issue(req, 0, now, sched);
                let gap = self.source.next_gap();
                sched.after(gap, Ev::Gen);
            }
            Ev::Retry { req, attempt } => {
                // The backoff delay expired: the client re-issues the shed
                // or timed-out request through the full admission path.
                self.issue(req, attempt, now, sched);
            }
            Ev::Timeout { req, attempt } => {
                // Stale unless this attempt is still the live one (it was
                // neither completed nor superseded by a later re-issue).
                if self.retry_live.get(&req.seq) != Some(&attempt) {
                    return;
                }
                self.retry_live.remove(&req.seq);
                self.timeouts_fired += 1;
                // The abandoned attempt is *not* recalled from the server:
                // whatever work it queued still runs to completion — the
                // wasted service that lets timeout-retry loops sustain
                // overload after the triggering burst ends.
                self.feed_retry(req, attempt, now, SimDuration::ZERO, sched);
            }
            Ev::Packet(req, attempt) => {
                // Server-edge credits: the shed request already burned half
                // an RTT getting here, and its explicit reject burns the
                // other half going back — but it never touches a ring, a
                // queue, or a core.
                if self.cfg.admission_mode == AdmissionMode::ServerEdge {
                    if !self.gate_admit(req.conn) {
                        self.wire_rejects += 1;
                        self.trace(req.home, req.seq, TraceKind::Shed, now);
                        // The reject travels back before the client can
                        // react: it learns half an RTT from now, and the
                        // superseded attempt's timeout must not also fire.
                        if self.timeout_dur.is_some()
                            && self.retry_live.get(&req.seq) == Some(&attempt)
                        {
                            self.retry_live.remove(&req.seq);
                        }
                        self.feed_retry(req, attempt, now, self.source.half_rtt, sched);
                        return;
                    }
                    if self.admission.is_some() {
                        self.trace(req.home, req.seq, TraceKind::Admit, now);
                    }
                }
                let home = self.serving_core(req.home as usize);
                self.trace(home as u16, req.seq, TraceKind::Enqueue, now);
                self.cores[home].ring.push_back(req);
                self.m_ring.set(home);
                if !self.m_busy.test(home) {
                    self.wake(home, sched);
                } else if self.ipis_enabled()
                    && self.m_inapp.test(home)
                    && any_and_not(&self.m_active, &self.m_busy)
                {
                    // An idle core's poll sweep (steps c–d) would spot this
                    // packet almost immediately and interrupt the home core.
                    self.send_ipi(home, sched);
                }
            }
            Ev::Run(core) => {
                self.m_run_pending.clear(core);
                self.run_core(core, now, sched);
            }
            Ev::WorkDone { core, epoch } => self.work_done(core, epoch, now, sched),
            Ev::Ipi(core) => self.ipi(core, now, sched),
            Ev::Preempt { core, epoch } => self.preempt(core, epoch, now, sched),
            Ev::Control => self.control(now, sched),
        }
        if self.rec.is_done() {
            // Stop on the event that reached the completion target rather
            // than consuming (and losing) the next queued event. The event
            // queue stays intact — self-perpetuating chains (`Gen`,
            // `Control`) and in-flight work included — which is what makes
            // a post-run checkpoint resumable without re-arming anything.
            sched.stop();
        }
    }
}

/// Runs the ZygOS-family system simulation (static, no-interrupts, or
/// elastic; with or without the credit gate).
pub(crate) fn run(cfg: &SysConfig) -> SysOutput {
    debug_assert!(matches!(
        cfg.system,
        SystemKind::Zygos | SystemKind::ZygosNoInterrupts | SystemKind::Elastic { .. }
    ));
    let model = ZygosModel::new(cfg.clone());
    let control = model.wants_control_tick();
    let mut engine = Engine::new(model);
    engine.schedule(SimTime::ZERO, Ev::Gen);
    if control {
        engine.schedule(SimTime::ZERO, Ev::Control);
    }
    engine.run();
    let now = engine.now();
    let events = engine.processed();
    engine.into_model().into_output(now, events)
}

/// A converged simulated world, checkpointed at the end of a completed
/// run: the engine's full event queue (in-flight packets, work
/// completions, the self-perpetuating `Gen`/`Control` chains) plus the
/// entire `ZygosModel` state. `run_warm` splices the next measurement
/// run onto it; the handle itself is immutable, so one converged point can
/// seed several neighbors (the bisection cache does exactly that).
pub struct WarmState {
    engine: Engine<ZygosModel>,
}

impl WarmState {
    /// The offered load this world converged at.
    pub fn load(&self) -> f64 {
        self.engine.model().cfg().load
    }
}

/// True when `cfg` runs on the ZygOS-family model — the only systems with
/// a checkpointable world (`ix`/`linux` hosts always run cold).
pub(crate) fn is_zygos_family(cfg: &SysConfig) -> bool {
    matches!(
        cfg.system,
        SystemKind::Zygos | SystemKind::ZygosNoInterrupts | SystemKind::Elastic { .. }
    )
}

/// As [`run`], but also checkpoints the finished world for warm-starting
/// a neighboring run. The returned output is bit-identical to `run(cfg)`.
pub(crate) fn run_keep(cfg: &SysConfig) -> (SysOutput, WarmState) {
    debug_assert!(is_zygos_family(cfg));
    let model = ZygosModel::new(cfg.clone());
    let control = model.wants_control_tick();
    let mut engine = Engine::new(model);
    engine.schedule(SimTime::ZERO, Ev::Gen);
    if control {
        engine.schedule(SimTime::ZERO, Ev::Control);
    }
    engine.run();
    let now = engine.now();
    let events = engine.processed();
    let keep = engine.checkpoint();
    let out = engine.into_model().into_output(now, events);
    (out, WarmState { engine: keep })
}

/// Resumes a checkpointed world under a new config (same machine, new
/// offered load): the arrival process is re-rated in place, a fresh
/// recorder opens its measurement window at the splice point (after
/// `warmup` re-equilibration completions), and the run continues from the
/// checkpoint's event queue — skipping the cold-start convergence the
/// previous point already paid for. See `docs/TAIL.md` for the
/// measurement-window reset rule.
pub(crate) fn run_warm(warm: &WarmState, cfg: &SysConfig, warmup: u64) -> (SysOutput, WarmState) {
    debug_assert!(is_zygos_family(cfg));
    let mut engine = warm.engine.clone();
    let now = engine.now();
    let before = engine.processed();
    engine.model_mut().retarget(cfg, now, warmup);
    engine.run();
    let end = engine.now();
    let events = engine.processed() - before;
    let keep = engine.checkpoint();
    let out = engine.into_model().into_output(end, events);
    (out, WarmState { engine: keep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zygos_load::slo::{Slo, TenantSlos};
    use zygos_sched::CreditConfig;
    use zygos_sim::dist::ServiceDist;

    fn quick(system: SystemKind, load: f64, mean_us: f64) -> SysOutput {
        let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(mean_us), load);
        cfg.requests = 20_000;
        cfg.warmup = 4_000;
        run(&cfg)
    }

    #[test]
    fn completes_all_requests() {
        let out = quick(SystemKind::Zygos, 0.5, 10.0);
        assert_eq!(out.completed, 20_000);
        assert_eq!(out.latency.count(), 20_000);
    }

    #[test]
    fn low_load_latency_near_service_plus_overheads() {
        let out = quick(SystemKind::Zygos, 0.05, 10.0);
        // p99 of Exp(10µs) is 46µs; add RTT (4µs) and ~2µs of overheads.
        let p99 = out.p99_us();
        assert!((46.0..60.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn throughput_tracks_offered_load() {
        let out = quick(SystemKind::Zygos, 0.6, 10.0);
        // Offered: 0.6 × 16/10µs = 0.96 MRPS.
        let thr = out.throughput_mrps();
        assert!((thr - 0.96).abs() < 0.06, "throughput = {thr}");
    }

    #[test]
    fn steals_occur_at_moderate_load() {
        let out = quick(SystemKind::Zygos, 0.5, 10.0);
        assert!(
            out.steal_fraction() > 0.05,
            "steal fraction = {}",
            out.steal_fraction()
        );
        assert!(out.ipis > 0, "IPIs should fire");
    }

    #[test]
    fn no_interrupt_mode_sends_no_ipis() {
        let out = quick(SystemKind::ZygosNoInterrupts, 0.5, 10.0);
        assert_eq!(out.ipis, 0);
        assert!(out.steal_fraction() > 0.0, "stealing still happens");
    }

    #[test]
    fn interrupts_help_tail_latency_at_high_load() {
        let with = quick(SystemKind::Zygos, 0.75, 10.0);
        let without = quick(SystemKind::ZygosNoInterrupts, 0.75, 10.0);
        assert!(
            with.p99_us() <= without.p99_us() * 1.05,
            "with {} vs without {}",
            with.p99_us(),
            without.p99_us()
        );
    }

    #[test]
    fn stable_near_saturation_point() {
        // At 85% of ideal saturation ZygOS must still complete (overheads
        // shave a few percent, so this sits below its real saturation).
        let out = quick(SystemKind::Zygos, 0.85, 25.0);
        assert_eq!(out.completed, 20_000);
        assert!(out.p99_us() < 2_000.0, "p99 = {}", out.p99_us());
    }

    #[test]
    fn no_admission_reports_no_gate_counts() {
        let out = quick(SystemKind::Zygos, 0.5, 10.0);
        assert_eq!(out.admitted, 0);
        assert_eq!(out.rejected, 0);
        assert_eq!(out.shed_fraction(), 0.0);
    }

    #[test]
    fn credit_gate_sheds_under_overload_and_bounds_admitted_tail() {
        let mut cfg = SysConfig::paper(
            SystemKind::Zygos,
            ServiceDist::exponential_us(10.0),
            1.3, // 30% past saturation: unbounded queues without a gate.
        );
        cfg.requests = 15_000;
        cfg.warmup = 3_000;
        cfg.admission = Some(CreditConfig::for_cores(cfg.cores, 80.0));
        let out = run(&cfg);
        assert_eq!(out.completed, 15_000);
        assert!(out.rejected > 0, "overload must shed");
        assert!(
            out.shed_fraction() > 0.1,
            "shed fraction = {}",
            out.shed_fraction()
        );
        assert!(
            out.p99_us() < 400.0,
            "admitted p99 must stay bounded, got {}",
            out.p99_us()
        );
    }

    #[test]
    fn retry_feedback_reissues_shed_requests_and_keeps_conservation() {
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 1.3);
        cfg.requests = 15_000;
        cfg.warmup = 3_000;
        cfg.admission = Some(CreditConfig::for_cores(cfg.cores, 80.0));
        cfg.retry = Some(zygos_load::retry::RetryPolicy::Backoff {
            base_us: 50,
            factor: 2.0,
            max_attempts: 3,
        });
        let out = run(&cfg);
        assert_eq!(out.completed, 15_000);
        assert!(out.retries > 0, "overload sheds must feed retries back");
        assert!(out.give_ups > 0, "a 3-attempt cap must abandon some");
        assert!(
            out.retry_amplification() > 1.0,
            "amplification = {}",
            out.retry_amplification()
        );
        let goodput = out.goodput_fraction();
        assert!(
            (0.0..1.0).contains(&goodput),
            "give-ups must dent goodput: {goodput}"
        );
        // Every attempt (generated or retried) terminates at most once:
        // completed, rejected, or still in flight at drain.
        assert!(
            out.generated + out.retries >= out.completed_total + out.rejected,
            "conservation violated: gen {} + retries {} < done {} + rej {}",
            out.generated,
            out.retries,
            out.completed_total,
            out.rejected
        );
        // The admitted tail stays gate-bounded even with the loop closed.
        assert!(out.p99_us() < 400.0, "admitted p99 = {}", out.p99_us());
    }

    #[test]
    fn timeout_retries_fire_without_any_admission_gate() {
        // No gate, load past saturation: nothing is ever shed, so only
        // the client timeout can trigger the policy — the naive-retry
        // configuration whose feedback sustains metastable overload.
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 1.15);
        cfg.requests = 12_000;
        cfg.warmup = 2_000;
        cfg.retry = Some(zygos_load::retry::RetryPolicy::Backoff {
            base_us: 1,
            factor: 1.0,
            max_attempts: 2,
        });
        cfg.retry_jitter = false;
        cfg.retry_timeout_us = Some(300.0);
        let out = run(&cfg);
        assert_eq!(out.completed, 12_000);
        assert_eq!(out.rejected, 0, "no gate, no sheds");
        assert!(out.timeouts > 0, "saturated queues must blow timeouts");
        assert!(out.retries > 0, "timeouts must re-issue");
        assert!(
            out.retry_amplification() > 1.01,
            "amplification = {}",
            out.retry_amplification()
        );
    }

    #[test]
    fn retry_world_checkpoint_resume_is_bit_identical() {
        // The retry plane (live-attempt map, pending Retry/Timeout
        // events, counters) is world state: a clone resumed mid-storm
        // must land exactly where the straight run does.
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 1.25);
        cfg.requests = 6_000;
        cfg.warmup = 1_000;
        cfg.admission = Some(CreditConfig::for_cores(cfg.cores, 80.0));
        cfg.retry = Some(zygos_load::retry::RetryPolicy::Backoff {
            base_us: 25,
            factor: 2.0,
            max_attempts: 4,
        });
        cfg.retry_timeout_us = Some(500.0);
        let straight = run(&cfg);
        assert!(straight.retries > 0, "the storm must actually fire");

        let model = ZygosModel::new(cfg.clone());
        let mut engine = Engine::new(model);
        engine.schedule(SimTime::ZERO, Ev::Gen);
        engine.schedule(SimTime::ZERO, Ev::Control);
        for _ in 0..30_000 {
            assert!(engine.step(), "run must outlast the checkpoint offset");
        }
        let mut resumed = engine.checkpoint();
        engine.run();
        resumed.run();
        for out in [
            {
                let (now, ev) = (engine.now(), engine.processed());
                engine.into_model().into_output(now, ev)
            },
            {
                let (now, ev) = (resumed.now(), resumed.processed());
                resumed.into_model().into_output(now, ev)
            },
        ] {
            assert_eq!(out.events, straight.events);
            assert_eq!(out.retries, straight.retries);
            assert_eq!(out.give_ups, straight.give_ups);
            assert_eq!(out.timeouts, straight.timeouts);
            assert_eq!(out.rejected, straight.rejected);
            assert_eq!(out.p99_us(), straight.p99_us());
            assert_eq!(out.latency.count(), straight.latency.count());
        }
    }

    #[test]
    fn srpt_background_order_runs_and_completes() {
        let mut cfg = SysConfig::paper(
            SystemKind::Zygos,
            ServiceDist::TwoPoint {
                fast_us: 0.5,
                slow_us: 500.0,
                p_fast: 0.995,
            },
            0.6,
        );
        cfg.requests = 15_000;
        cfg.warmup = 3_000;
        cfg.preemption_quantum_us = 25.0;
        cfg.background_order = BackgroundOrder::Srpt;
        let out = run(&cfg);
        assert_eq!(out.completed, 15_000);
        assert!(out.preemptions > 0, "quantum must fire");
    }

    #[test]
    fn world_checkpoint_resume_is_bit_identical() {
        // Checkpoint the full simulated world mid-run and finish both the
        // original and the resumed clone: every output — histogram,
        // counters, event count, window — must equal the straight-through
        // run's exactly. This is the exact-resume guarantee the warm-start
        // sweeps and the importance splitter are built on.
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.7);
        cfg.requests = 8_000;
        cfg.warmup = 1_000;
        let straight = run(&cfg);

        let model = ZygosModel::new(cfg.clone());
        let mut engine = Engine::new(model);
        engine.schedule(SimTime::ZERO, Ev::Gen);
        for _ in 0..37_123 {
            assert!(engine.step(), "run must outlast the checkpoint offset");
        }
        let mut resumed = engine.checkpoint();
        engine.run();
        resumed.run();
        for out in [
            {
                let (now, ev) = (engine.now(), engine.processed());
                engine.into_model().into_output(now, ev)
            },
            {
                let (now, ev) = (resumed.now(), resumed.processed());
                resumed.into_model().into_output(now, ev)
            },
        ] {
            assert_eq!(out.completed, straight.completed);
            assert_eq!(out.events, straight.events);
            assert_eq!(out.latency.count(), straight.latency.count());
            assert_eq!(out.p99_us(), straight.p99_us());
            assert_eq!(out.throughput_mrps(), straight.throughput_mrps());
            assert_eq!(out.stolen_events, straight.stolen_events);
            assert_eq!(out.ipis, straight.ipis);
        }
    }

    #[test]
    fn tracing_leaves_metrics_and_event_counts_bit_identical() {
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.6);
        cfg.requests = 10_000;
        cfg.warmup = 2_000;
        let base = run(&cfg);
        cfg.telemetry = Some(zygos_telemetry::TelemetryConfig::full_trace());
        let traced = run(&cfg);
        // Tracing must be a pure observer: same engine-event count, same
        // completions, same histogram — bit-identical, not merely close.
        assert_eq!(base.events, traced.events);
        assert_eq!(base.completed, traced.completed);
        assert_eq!(base.latency.count(), traced.latency.count());
        assert_eq!(base.p99_us(), traced.p99_us());
        assert_eq!(base.throughput_mrps(), traced.throughput_mrps());
        let t = traced.telemetry.expect("telemetry armed");
        assert_eq!(t.dropped, 0, "rings sized for a full-run trace");
        // The trace's completion population is exactly the histogram's.
        let completions = t
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::Completion)
            .count() as u64;
        assert_eq!(completions, traced.latency.count());
    }

    #[test]
    fn trace_is_byte_identical_across_runs() {
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.7);
        cfg.requests = 8_000;
        cfg.warmup = 1_000;
        cfg.telemetry = Some(zygos_telemetry::TelemetryConfig::full_trace());
        let a = run(&cfg).telemetry.expect("armed");
        let b = run(&cfg).telemetry.expect("armed");
        assert_eq!(a, b, "same seed + policy must give the same trace");
    }

    #[test]
    fn decomposition_sums_match_the_measured_tail() {
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.7);
        cfg.requests = 10_000;
        cfg.warmup = 2_000;
        cfg.telemetry = Some(zygos_telemetry::TelemetryConfig::full_trace());
        let out = run(&cfg);
        let t = out.telemetry.as_ref().expect("armed");
        let mut decomps = zygos_telemetry::decompose(&t.events);
        assert_eq!(
            decomps.len() as u64,
            out.latency.count(),
            "one decomposition per measured completion"
        );
        // Exact partition: components sum to the total on every lifecycle.
        for d in &decomps {
            assert_eq!(d.sum_ns(), d.total_ns);
        }
        // The p99 total matches the histogram's p99 to its bucket
        // precision (~0.1%, both sides use the same rank rule).
        let p99 = zygos_telemetry::decomposition_at_quantile(&mut decomps, 0.99)
            .expect("non-empty")
            .total_ns as f64
            / 1_000.0;
        let hist_p99 = out.p99_us();
        assert!(
            (p99 - hist_p99).abs() / hist_p99 < 0.01,
            "decomposed p99 {p99} vs histogram p99 {hist_p99}"
        );
    }

    #[test]
    fn telemetry_series_arm_the_control_tick_without_a_control_plane() {
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.5);
        cfg.requests = 8_000;
        cfg.warmup = 1_000;
        cfg.telemetry = Some(zygos_telemetry::TelemetryConfig {
            trace: false,
            series: vec![
                zygos_telemetry::SeriesKind::AdmittedRate,
                zygos_telemetry::SeriesKind::ActiveCores,
            ],
            ..Default::default()
        });
        let out = run(&cfg);
        let t = out.telemetry.expect("armed");
        assert!(t.events.is_empty(), "series-only config records no trace");
        let active = t
            .series
            .iter()
            .find(|s| s.name == "active_cores")
            .expect("requested series present");
        assert!(active.points.len() > 10, "harvested on the control tick");
        assert!(active.points.iter().all(|&(_, v)| v == 16.0));
    }

    #[test]
    fn credit_series_track_the_gate_under_overload() {
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 1.3);
        cfg.requests = 10_000;
        cfg.warmup = 2_000;
        cfg.admission = Some(CreditConfig::for_cores(cfg.cores, 80.0));
        cfg.telemetry = Some(zygos_telemetry::TelemetryConfig {
            trace: false,
            series: vec![
                zygos_telemetry::SeriesKind::AdmittedRate,
                zygos_telemetry::SeriesKind::CreditCapacity,
                zygos_telemetry::SeriesKind::ShedByClass,
            ],
            ..Default::default()
        });
        let out = run(&cfg);
        let t = out.telemetry.expect("armed");
        let credits = t.series.iter().find(|s| s.name == "credit_capacity");
        let admitted = t.series.iter().find(|s| s.name == "admitted_rate");
        let shed = t.series.iter().find(|s| s.name == "shed_rate_class0");
        let credits = credits.expect("credit series");
        let admitted = admitted.expect("admitted series");
        let shed = shed.expect("per-class shed series");
        assert!(credits.points.iter().all(|&(_, v)| v >= 1.0));
        assert!(
            admitted.points.iter().any(|&(_, v)| v > 0.0),
            "admissions flow through the gate"
        );
        assert!(
            shed.points.iter().any(|&(_, v)| v > 0.0),
            "overload must show up in the shed series"
        );
    }

    #[test]
    fn tenant_slo_classes_drive_the_elastic_controller() {
        // A strict interactive class forces the SLO-driven allocator to
        // hold more cores than the utilization rule would at low load.
        let mut cfg = SysConfig::paper(
            SystemKind::Elastic { min_cores: 2 },
            ServiceDist::exponential_us(10.0),
            0.2,
        );
        cfg.requests = 20_000;
        cfg.warmup = 4_000;
        cfg.slo = Some(TenantSlos::uniform(Slo::p99(55.0))); // barely above the no-load p99
        let strict = run(&cfg);
        cfg.slo = None;
        let unconstrained = run(&cfg);
        assert!(
            strict.avg_active_cores >= unconstrained.avg_active_cores,
            "strict SLO {:.2} cores vs unconstrained {:.2}",
            strict.avg_active_cores,
            unconstrained.avg_active_cores
        );
    }
}
