//! The ZygOS system model (paper §4–§5) on the discrete-event engine.
//!
//! Each simulated core owns a NIC ring (RSS-fed), a shuffle queue of ready
//! connections, and a remote-syscall queue. Cores run a priority loop:
//!
//! 1. execute pending **remote syscalls** (TX for stolen executions),
//! 2. dequeue the next ready connection from the **own shuffle queue**,
//! 3. run the **network stack** over a bounded batch from the own NIC ring,
//! 4. **steal** a ready connection from a random other core,
//! 5. if IPIs are enabled, scan other cores' NIC rings and **send an IPI**
//!    to a home core that sits in application code with undrained packets,
//! 6. go idle (woken by any state change it could act on).
//!
//! IPIs interrupt *application* execution only: the handler replenishes the
//! shuffle queue from the NIC ring and flushes remote syscalls, extending
//! the interrupted event's completion by the handler cost — exactly the
//! preemption a real exit-less IPI performs, which the live runtime cannot
//! do (see DESIGN.md §6) and the simulator can.
//!
//! The `ZygosNoInterrupts` variant disables step 5 and the IPI on remote
//! syscall shipping: the cooperative mode whose head-of-line blocking the
//! paper's Figure 6 quantifies.

use std::collections::VecDeque;

use zygos_sim::engine::{Engine, Model, Scheduler};
use zygos_sim::time::{SimDuration, SimTime};

use crate::arrivals::{Recorder, Req, Source};
use crate::config::{SysConfig, SysOutput, SystemKind};

pub(crate) enum Ev {
    /// Generate the next client request.
    Gen,
    /// A request packet reaches its home core's NIC ring.
    Packet(Req),
    /// Core scheduling-loop entry.
    Run(usize),
    /// The core's current work chunk completes (stale if epoch mismatches).
    WorkDone { core: usize, epoch: u64 },
    /// An IPI arrives at a core.
    Ipi(usize),
}

enum Work {
    /// Running the network stack over an RX batch.
    Net { batch: Vec<Req> },
    /// Executing one application event; the rest of the connection's batch
    /// follows.
    App {
        conn: u32,
        cur: Req,
        rest: VecDeque<Req>,
        stolen: bool,
    },
    /// Executing remote batched syscalls (TX for stolen events).
    RemoteTx { batch: Vec<Req> },
}

struct Core {
    ring: VecDeque<Req>,
    shuffle: VecDeque<u32>,
    remote_sys: Vec<Req>,
    work: Option<Work>,
    /// Completion time of the current work chunk (valid when `work` is set).
    end: SimTime,
    /// Epoch guard: bumping it invalidates the scheduled `WorkDone`.
    epoch: u64,
    ipi_pending: bool,
}

impl Core {
    fn is_idle(&self) -> bool {
        self.work.is_none()
    }

    fn in_app(&self) -> bool {
        matches!(self.work, Some(Work::App { .. }))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnSt {
    Idle,
    Ready,
    Busy,
}

struct Conn {
    st: ConnSt,
    pending: VecDeque<Req>,
}

/// Shorthand for nanosecond durations.
fn ns(v: u64) -> SimDuration {
    SimDuration::from_nanos(v)
}

pub(crate) struct ZygosModel {
    cfg: SysConfig,
    source: Source,
    rec: Recorder,
    cores: Vec<Core>,
    conns: Vec<Conn>,
    /// Scratch buffer for randomized victim order.
    victims: Vec<usize>,
    ipis_enabled: bool,
    // Telemetry.
    local_events: u64,
    stolen_events: u64,
    ipis_delivered: u64,
}

impl ZygosModel {
    pub(crate) fn new(cfg: SysConfig) -> Self {
        let source = Source::new(&cfg);
        let rec = Recorder::new(&cfg, source.half_rtt);
        let ipis_enabled = cfg.system == SystemKind::Zygos;
        ZygosModel {
            cores: (0..cfg.cores)
                .map(|_| Core {
                    ring: VecDeque::new(),
                    shuffle: VecDeque::new(),
                    remote_sys: Vec::new(),
                    work: None,
                    end: SimTime::ZERO,
                    epoch: 0,
                    ipi_pending: false,
                })
                .collect(),
            conns: (0..cfg.conns)
                .map(|_| Conn {
                    st: ConnSt::Idle,
                    pending: VecDeque::new(),
                })
                .collect(),
            victims: (0..cfg.cores).collect(),
            source,
            rec,
            ipis_enabled,
            cfg,
            local_events: 0,
            stolen_events: 0,
            ipis_delivered: 0,
        }
    }

    /// Wakes every idle core (something steal-able appeared).
    fn wake_idle(&self, sched: &mut Scheduler<Ev>) {
        for (i, c) in self.cores.iter().enumerate() {
            if c.is_idle() {
                sched.at(sched.now(), Ev::Run(i));
            }
        }
    }

    /// Wakes one core if idle.
    fn wake(&self, core: usize, sched: &mut Scheduler<Ev>) {
        if self.cores[core].is_idle() {
            sched.at(sched.now(), Ev::Run(core));
        }
    }

    /// Sends an IPI to `target` if one is not already in flight.
    fn send_ipi(&mut self, target: usize, sched: &mut Scheduler<Ev>) {
        if !self.cores[target].ipi_pending {
            self.cores[target].ipi_pending = true;
            sched.after(ns(self.cfg.cost.ipi_delivery_ns), Ev::Ipi(target));
        }
    }

    /// Applies RX-batch effects: packets join their connections' event
    /// queues; idle connections become ready on this core's shuffle queue.
    fn apply_net_batch(&mut self, core: usize, batch: Vec<Req>, sched: &mut Scheduler<Ev>) {
        let mut newly_ready = false;
        for req in batch {
            let conn = &mut self.conns[req.conn as usize];
            conn.pending.push_back(req);
            if conn.st == ConnSt::Idle {
                conn.st = ConnSt::Ready;
                self.cores[core].shuffle.push_back(req.conn);
                newly_ready = true;
            }
        }
        if newly_ready {
            // Ready connections are steal-able: every idle core may act.
            self.wake_idle(sched);
        }
    }

    /// Begins executing an application event batch for `conn` on `core`.
    fn begin_app(
        &mut self,
        core: usize,
        conn: u32,
        extra_ns: u64,
        stolen: bool,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let c = &mut self.conns[conn as usize];
        debug_assert_eq!(c.st, ConnSt::Busy);
        let mut events = std::mem::take(&mut c.pending);
        debug_assert!(!events.is_empty(), "ready connection without events");
        let cur = events.pop_front().expect("non-empty");
        let dur = self.event_exec_ns(&cur, stolen) + extra_ns;
        let core_ref = &mut self.cores[core];
        core_ref.work = Some(Work::App {
            conn,
            cur,
            rest: events,
            stolen,
        });
        core_ref.epoch += 1;
        core_ref.end = now + ns(dur);
        sched.at(
            core_ref.end,
            Ev::WorkDone {
                core,
                epoch: core_ref.epoch,
            },
        );
    }

    /// CPU time of one application event on its execution core.
    ///
    /// Home execution transmits inline (eager TX, §6.2); stolen execution
    /// ships its syscalls home instead (the shipping enqueue is folded into
    /// the home core's `remote_syscall_ns`).
    fn event_exec_ns(&self, req: &Req, stolen: bool) -> u64 {
        let c = &self.cfg.cost;
        let mut ns = c.event_dispatch_ns + req.service.as_nanos() + c.syscall_batch_ns;
        if !stolen {
            ns += c.stack_tx_per_msg_ns;
        }
        ns
    }

    /// The core scheduling loop (priorities 1–6 of the module docs).
    fn run_core(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.cores[core].work.is_some() {
            return; // Busy; it will rerun at WorkDone.
        }
        let cost = self.cfg.cost.clone();

        // 1. Remote syscalls (TX for stolen executions) — highest priority:
        // they hold finished responses.
        if !self.cores[core].remote_sys.is_empty() {
            let batch = std::mem::take(&mut self.cores[core].remote_sys);
            let dur = (cost.remote_syscall_ns + cost.stack_tx_per_msg_ns) * batch.len() as u64;
            let c = &mut self.cores[core];
            c.work = Some(Work::RemoteTx { batch });
            c.epoch += 1;
            c.end = now + ns(dur);
            sched.at(
                c.end,
                Ev::WorkDone {
                    core,
                    epoch: c.epoch,
                },
            );
            return;
        }

        // 2. Own shuffle queue.
        if let Some(conn) = self.cores[core].shuffle.pop_front() {
            debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
            self.conns[conn as usize].st = ConnSt::Busy;
            self.begin_app(core, conn, cost.shuffle_op_ns, false, now, sched);
            return;
        }

        // 3. Own NIC ring: run the network stack over a bounded batch.
        if !self.cores[core].ring.is_empty() {
            let k = (self.cores[core].ring.len() as u64).min(self.cfg.rx_batch.max(1));
            let batch: Vec<Req> = (0..k)
                .map(|_| self.cores[core].ring.pop_front().expect("non-empty ring"))
                .collect();
            let dur = cost.driver_batch_fixed_ns
                + k * (cost.driver_per_pkt_ns + cost.stack_rx_per_pkt_ns);
            let c = &mut self.cores[core];
            c.work = Some(Work::Net { batch });
            c.epoch += 1;
            c.end = now + ns(dur);
            sched.at(
                c.end,
                Ev::WorkDone {
                    core,
                    epoch: c.epoch,
                },
            );
            return;
        }

        // 4. Steal from another core's shuffle queue (randomized order,
        // unless the ablation knob disables it).
        let mut victims = std::mem::take(&mut self.victims);
        if self.cfg.randomize_steal_order {
            self.source.rng_mut().shuffle(&mut victims);
        }
        let mut stolen_conn = None;
        for &v in &victims {
            if v == core {
                continue;
            }
            if let Some(conn) = self.cores[v].shuffle.pop_front() {
                stolen_conn = Some(conn);
                break;
            }
        }
        if let Some(conn) = stolen_conn {
            self.victims = victims;
            debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
            self.conns[conn as usize].st = ConnSt::Busy;
            self.begin_app(
                core,
                conn,
                cost.shuffle_op_ns + cost.steal_extra_ns,
                true,
                now,
                sched,
            );
            return;
        }

        // 5. Scan remote NIC rings; IPI home cores stuck in application
        // code ("aggressively sends interrupts as soon as a remote core
        // detects a pending packet in the hardware queue and the home core
        // is executing at user-level", §5).
        if self.ipis_enabled {
            let mut target = None;
            for &v in &victims {
                if v == core {
                    continue;
                }
                if !self.cores[v].ring.is_empty()
                    && self.cores[v].in_app()
                    && !self.cores[v].ipi_pending
                {
                    target = Some(v);
                    break;
                }
            }
            if let Some(v) = target {
                self.send_ipi(v, sched);
            }
        }
        self.victims = victims;

        // 6. Idle. Woken by wake()/wake_idle() on any actionable change.
    }

    fn work_done(&mut self, core: usize, epoch: u64, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.cores[core].epoch != epoch {
            return; // Invalidated by an IPI extension.
        }
        let work = self.cores[core].work.take().expect("work present at WorkDone");
        match work {
            Work::Net { batch } => {
                self.apply_net_batch(core, batch, sched);
            }
            Work::RemoteTx { batch } => {
                for req in &batch {
                    self.rec.complete(req, now);
                }
            }
            Work::App {
                conn,
                cur,
                mut rest,
                stolen,
            } => {
                if stolen {
                    self.stolen_events += 1;
                    // Ship the response home; the home core transmits.
                    let home = cur.home as usize;
                    self.cores[home].remote_sys.push(cur);
                    if self.cores[home].is_idle() {
                        self.wake(home, sched);
                    } else if self.ipis_enabled && self.cores[home].in_app() {
                        self.send_ipi(home, sched);
                    }
                } else {
                    self.local_events += 1;
                    self.rec.complete(&cur, now);
                }
                if let Some(next) = rest.pop_front() {
                    // Continue the connection's event batch (implicit
                    // per-flow batching, §6.2).
                    let dur = ns(self.event_exec_ns(&next, stolen));
                    let c = &mut self.cores[core];
                    c.work = Some(Work::App {
                        conn,
                        cur: next,
                        rest,
                        stolen,
                    });
                    c.epoch += 1;
                    c.end = now + dur;
                    sched.at(
                        c.end,
                        Ev::WorkDone {
                            core,
                            epoch: c.epoch,
                        },
                    );
                    return;
                }
                // Batch finished: Figure 5 transition out of busy.
                let connref = &mut self.conns[conn as usize];
                if connref.pending.is_empty() {
                    connref.st = ConnSt::Idle;
                } else {
                    connref.st = ConnSt::Ready;
                    let home = self.source.home_of(conn) as usize;
                    self.cores[home].shuffle.push_back(conn);
                    self.wake_idle(sched);
                }
            }
        }
        // Re-enter the scheduling loop.
        self.run_core(core, now, sched);
    }

    fn ipi(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.cores[core].ipi_pending = false;
        self.ipis_delivered += 1;
        if !self.cores[core].in_app() {
            // Not in user code: the loop will find the work itself.
            self.wake(core, sched);
            return;
        }
        let cost = self.cfg.cost.clone();
        let mut ext_ns = cost.ipi_handler_ns;
        // Handler duty 1: replenish the shuffle queue if it ran dry.
        if self.cores[core].shuffle.is_empty() && !self.cores[core].ring.is_empty() {
            let k = (self.cores[core].ring.len() as u64).min(self.cfg.rx_batch.max(1));
            let batch: Vec<Req> = (0..k)
                .map(|_| self.cores[core].ring.pop_front().expect("non-empty"))
                .collect();
            ext_ns += cost.driver_batch_fixed_ns
                + k * (cost.driver_per_pkt_ns + cost.stack_rx_per_pkt_ns);
            self.apply_net_batch(core, batch, sched);
        }
        // Handler duty 2: flush remote syscalls / transmit.
        if !self.cores[core].remote_sys.is_empty() {
            let batch = std::mem::take(&mut self.cores[core].remote_sys);
            ext_ns += (cost.remote_syscall_ns + cost.stack_tx_per_msg_ns) * batch.len() as u64;
            let tx_at = now + ns(cost.ipi_handler_ns);
            for req in &batch {
                self.rec.complete(req, tx_at);
            }
        }
        // The interrupted application event finishes later by the handler's
        // execution time: invalidate and reschedule its completion.
        let ext = ns(ext_ns);
        let c = &mut self.cores[core];
        c.end += ext;
        c.epoch += 1;
        let (end, epoch) = (c.end, c.epoch);
        sched.at(end, Ev::WorkDone { core, epoch });
    }

    pub(crate) fn into_output(self, final_time: SimTime) -> SysOutput {
        let sim_time_us = if self.rec.window_us() > 0.0 {
            self.rec.window_us()
        } else {
            final_time.as_micros_f64()
        };
        SysOutput {
            latency: self.rec.latency.clone(),
            completed: self.rec.measured(),
            sim_time_us,
            local_events: self.local_events,
            stolen_events: self.stolen_events,
            ipis: self.ipis_delivered,
        }
    }
}

impl Model for ZygosModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.rec.is_done() {
            sched.stop();
            return;
        }
        match ev {
            Ev::Gen => {
                let req = self.source.next_req(now);
                sched.after(self.source.half_rtt, Ev::Packet(req));
                let gap = self.source.next_gap();
                sched.after(gap, Ev::Gen);
            }
            Ev::Packet(req) => {
                let home = req.home as usize;
                self.cores[home].ring.push_back(req);
                if self.cores[home].is_idle() {
                    self.wake(home, sched);
                } else if self.ipis_enabled
                    && self.cores[home].in_app()
                    && self.cores.iter().any(|c| c.is_idle())
                {
                    // An idle core's poll sweep (steps c–d) would spot this
                    // packet almost immediately and interrupt the home core.
                    self.send_ipi(home, sched);
                }
            }
            Ev::Run(core) => self.run_core(core, now, sched),
            Ev::WorkDone { core, epoch } => self.work_done(core, epoch, now, sched),
            Ev::Ipi(core) => self.ipi(core, now, sched),
        }
    }
}

/// Runs the ZygOS (or ZygOS-no-interrupts) system simulation.
pub(crate) fn run(cfg: &SysConfig) -> SysOutput {
    debug_assert!(matches!(
        cfg.system,
        SystemKind::Zygos | SystemKind::ZygosNoInterrupts
    ));
    let mut engine = Engine::new(ZygosModel::new(cfg.clone()));
    engine.schedule(SimTime::ZERO, Ev::Gen);
    engine.run();
    let now = engine.now();
    engine.into_model().into_output(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zygos_sim::dist::ServiceDist;

    fn quick(system: SystemKind, load: f64, mean_us: f64) -> SysOutput {
        let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(mean_us), load);
        cfg.requests = 20_000;
        cfg.warmup = 4_000;
        run(&cfg)
    }

    #[test]
    fn completes_all_requests() {
        let out = quick(SystemKind::Zygos, 0.5, 10.0);
        assert_eq!(out.completed, 20_000);
        assert_eq!(out.latency.count(), 20_000);
    }

    #[test]
    fn low_load_latency_near_service_plus_overheads() {
        let out = quick(SystemKind::Zygos, 0.05, 10.0);
        // p99 of Exp(10µs) is 46µs; add RTT (4µs) and ~2µs of overheads.
        let p99 = out.p99_us();
        assert!((46.0..60.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn throughput_tracks_offered_load() {
        let out = quick(SystemKind::Zygos, 0.6, 10.0);
        // Offered: 0.6 × 16/10µs = 0.96 MRPS.
        let thr = out.throughput_mrps();
        assert!((thr - 0.96).abs() < 0.06, "throughput = {thr}");
    }

    #[test]
    fn steals_occur_at_moderate_load() {
        let out = quick(SystemKind::Zygos, 0.5, 10.0);
        assert!(
            out.steal_fraction() > 0.05,
            "steal fraction = {}",
            out.steal_fraction()
        );
        assert!(out.ipis > 0, "IPIs should fire");
    }

    #[test]
    fn no_interrupt_mode_sends_no_ipis() {
        let out = quick(SystemKind::ZygosNoInterrupts, 0.5, 10.0);
        assert_eq!(out.ipis, 0);
        assert!(out.steal_fraction() > 0.0, "stealing still happens");
    }

    #[test]
    fn interrupts_help_tail_latency_at_high_load() {
        let with = quick(SystemKind::Zygos, 0.75, 10.0);
        let without = quick(SystemKind::ZygosNoInterrupts, 0.75, 10.0);
        assert!(
            with.p99_us() <= without.p99_us() * 1.05,
            "with {} vs without {}",
            with.p99_us(),
            without.p99_us()
        );
    }

    #[test]
    fn stable_near_saturation_point() {
        // At 85% of ideal saturation ZygOS must still complete (overheads
        // shave a few percent, so this sits below its real saturation).
        let out = quick(SystemKind::Zygos, 0.85, 25.0);
        assert_eq!(out.completed, 20_000);
        assert!(out.p99_us() < 2_000.0, "p99 = {}", out.p99_us());
    }
}
