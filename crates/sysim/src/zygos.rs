//! The ZygOS system model (paper §4–§5) on the discrete-event engine.
//!
//! Each simulated core owns a NIC ring (RSS-fed), a shuffle queue of ready
//! connections, and a remote-syscall queue. Cores run a priority loop:
//!
//! 1. execute pending **remote syscalls** (TX for stolen executions),
//! 2. dequeue the next ready connection from the **own shuffle queue**,
//! 3. run the **network stack** over a bounded batch from the own NIC ring,
//! 4. **steal** a ready connection from a random other core,
//! 5. if IPIs are enabled, scan other cores' NIC rings and **send an IPI**
//!    to a home core that sits in application code with undrained packets,
//! 6. go idle (woken by any state change it could act on).
//!
//! IPIs interrupt *application* execution only: the handler replenishes the
//! shuffle queue from the NIC ring and flushes remote syscalls, extending
//! the interrupted event's completion by the handler cost — exactly the
//! preemption a real exit-less IPI performs, which the live runtime cannot
//! do (see DESIGN.md §6) and the simulator can.
//!
//! The `ZygosNoInterrupts` variant disables step 5 and the IPI on remote
//! syscall shipping: the cooperative mode whose head-of-line blocking the
//! paper's Figure 6 quantifies.
//!
//! # Elastic mode and preemptive quanta
//!
//! [`SystemKind::Elastic`] layers the `zygos-sched` control plane on this
//! model. A periodic `Control` event feeds busy-core and backlog counts to
//! a `CoreAllocator`; revoked cores drain their queues into an active core
//! and stop participating (their RSS queues are redirected, modeling
//! indirection-table reprogramming), granted cores rejoin and steal
//! immediately. A nonzero [`SysConfig::preemption_quantum_us`] arms a
//! per-chunk timer: application chunks longer than the quantum end in a
//! `Preempt` event (same epoch-guard machinery as IPIs) that charges the
//! IPI-handler cost and moves the remainder to a **background queue**
//! below all fresh work (approximate SJF, with aging after
//! `BG_AGING_QUANTA` quanta as the starvation bound), bounding
//! head-of-line blocking under dispersive service times.

use std::collections::VecDeque;

use zygos_sched::{
    AllocatorConfig, CoreAllocator, CoreSecondsMeter, Decision, LoadSignal, QuantumPolicy,
};
use zygos_sim::engine::{Engine, Model, Scheduler};
use zygos_sim::time::{SimDuration, SimTime};

use crate::arrivals::{Recorder, Req, Source};
use crate::config::{SysConfig, SysOutput, SystemKind};

pub(crate) enum Ev {
    /// Generate the next client request.
    Gen,
    /// A request packet reaches its home core's NIC ring.
    Packet(Req),
    /// Core scheduling-loop entry.
    Run(usize),
    /// The core's current work chunk completes (stale if epoch mismatches).
    WorkDone { core: usize, epoch: u64 },
    /// An IPI arrives at a core.
    Ipi(usize),
    /// The quantum timer fires on a core mid-chunk (stale if epoch
    /// mismatches).
    Preempt { core: usize, epoch: u64 },
    /// Elastic-controller tick.
    Control,
}

enum Work {
    /// Running the network stack over an RX batch.
    Net { batch: Vec<Req> },
    /// Executing one application event; the rest of the connection's batch
    /// follows.
    App {
        conn: u32,
        cur: Req,
        rest: VecDeque<Req>,
        stolen: bool,
        /// Chunk came from the background (preempted) queue: it fills idle
        /// capacity by policy and is excluded from the controller's
        /// foreground-utilization signal.
        bg: bool,
    },
    /// Executing remote batched syscalls (TX for stolen events).
    RemoteTx { batch: Vec<Req> },
}

struct Core {
    ring: VecDeque<Req>,
    shuffle: VecDeque<u32>,
    /// Preempted connections (Shinjuku-style second-level queue), each
    /// stamped with its enqueue time: a quantum-expired remainder is
    /// *known long*, so it only runs when no fresh work is visible
    /// anywhere — approximate shortest-job-first, which is what bounds the
    /// dispersive tail. Entries older than [`BG_AGING_QUANTA`] quanta are
    /// promoted ahead of fresh work: without aging, sustained overload
    /// starves preempted connections — and with them every later request
    /// pipelined on the same socket (§4.3 ordering holds per connection).
    bg: VecDeque<(u32, SimTime)>,
    remote_sys: Vec<Req>,
    work: Option<Work>,
    /// Completion time of the current work chunk (valid when `work` is set).
    end: SimTime,
    /// Epoch guard: bumping it invalidates the scheduled `WorkDone`.
    epoch: u64,
    ipi_pending: bool,
    /// Service nanoseconds of the current app chunk still unexecuted at its
    /// scheduled `Preempt`; `0` when the chunk runs to completion.
    slice_remaining_ns: u64,
    /// Elastic mode: whether this core is granted (always `true` for the
    /// static systems).
    active: bool,
}

impl Core {
    fn is_idle(&self) -> bool {
        self.work.is_none()
    }

    fn in_app(&self) -> bool {
        matches!(self.work, Some(Work::App { .. }))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnSt {
    Idle,
    Ready,
    Busy,
}

struct Conn {
    st: ConnSt,
    pending: VecDeque<Req>,
}

/// Shorthand for nanosecond durations.
fn ns(v: u64) -> SimDuration {
    SimDuration::from_nanos(v)
}

/// Background-queue aging bound, in preemption quanta: a preempted
/// connection waits at most this many quanta before it outranks fresh
/// work (multilevel-feedback starvation avoidance).
const BG_AGING_QUANTA: u64 = 20;

/// Elastic-mode control-plane state.
struct Elastic {
    allocator: CoreAllocator,
    meter: CoreSecondsMeter,
    /// RSS redirection: home core → serving core (identity while active).
    redirect: Vec<usize>,
    period: SimDuration,
    /// Busy-core integral at the previous control tick (for time-averaged
    /// utilization between ticks).
    last_ctl_busy_integral: u128,
    last_ctl_ns: u64,
    /// Granted-core integral snapshot taken when the measurement window
    /// opened, so reported core-seconds exclude the warmup (during which
    /// the fleet starts fully granted).
    meas_snapshot: Option<(u64, u128)>,
    /// `ZYGOS_ELASTIC_TRACE` read once at construction (the env lookup is
    /// too expensive for a 25µs-period tick path).
    trace: bool,
}

pub(crate) struct ZygosModel {
    cfg: SysConfig,
    source: Source,
    rec: Recorder,
    cores: Vec<Core>,
    conns: Vec<Conn>,
    /// Scratch buffer for randomized victim order.
    victims: Vec<usize>,
    ipis_enabled: bool,
    quantum: QuantumPolicy,
    elastic: Option<Elastic>,
    // Telemetry.
    local_events: u64,
    stolen_events: u64,
    ipis_delivered: u64,
    preemptions: u64,
    /// All cores with work installed (telemetry).
    busy: BusyMeter,
    /// Cores running *foreground* work — everything except background
    /// (preempted) application chunks, which fill idle capacity by policy
    /// and must not read as demand to the elastic controller.
    fg_busy: BusyMeter,
}

/// Integrates a core-count signal over simulated time.
#[derive(Default)]
struct BusyMeter {
    count: usize,
    integral_ns: u128,
    last_ns: u64,
}

impl BusyMeter {
    /// Flushes the integral to `ns` and applies `delta` to the count.
    fn update(&mut self, ns: u64, delta: i64) {
        self.integral_ns += ns.saturating_sub(self.last_ns) as u128 * self.count as u128;
        self.last_ns = self.last_ns.max(ns);
        self.count = (self.count as i64 + delta) as usize;
    }
}

impl ZygosModel {
    pub(crate) fn new(cfg: SysConfig) -> Self {
        let source = Source::new(&cfg);
        let rec = Recorder::new(&cfg, source.half_rtt);
        let ipis_enabled = matches!(cfg.system, SystemKind::Zygos | SystemKind::Elastic { .. });
        let quantum = QuantumPolicy::from_us(cfg.preemption_quantum_us);
        let elastic = match cfg.system {
            SystemKind::Elastic { min_cores } => Some(Elastic {
                allocator: CoreAllocator::new(AllocatorConfig {
                    min_cores: min_cores.clamp(1, cfg.cores),
                    max_cores: cfg.cores,
                    tuning: cfg.elastic.tuning,
                }),
                meter: CoreSecondsMeter::new(0, cfg.cores),
                redirect: (0..cfg.cores).collect(),
                period: SimDuration::from_micros_f64(cfg.elastic.control_period_us.max(1.0)),
                last_ctl_busy_integral: 0,
                last_ctl_ns: 0,
                meas_snapshot: None,
                trace: std::env::var_os("ZYGOS_ELASTIC_TRACE").is_some(),
            }),
            _ => None,
        };
        ZygosModel {
            cores: (0..cfg.cores)
                .map(|_| Core {
                    ring: VecDeque::new(),
                    shuffle: VecDeque::new(),
                    bg: VecDeque::new(),
                    remote_sys: Vec::new(),
                    work: None,
                    end: SimTime::ZERO,
                    epoch: 0,
                    ipi_pending: false,
                    slice_remaining_ns: 0,
                    active: true,
                })
                .collect(),
            conns: (0..cfg.conns)
                .map(|_| Conn {
                    st: ConnSt::Idle,
                    pending: VecDeque::new(),
                })
                .collect(),
            victims: (0..cfg.cores).collect(),
            source,
            rec,
            ipis_enabled,
            quantum,
            elastic,
            cfg,
            local_events: 0,
            stolen_events: 0,
            ipis_delivered: 0,
            preemptions: 0,
            busy: BusyMeter::default(),
            fg_busy: BusyMeter::default(),
        }
    }

    /// Accounts a `Core::work` presence transition at `now` (`delta` is +1
    /// for install, −1 for removal, 0 to flush the integrals; `fg` is
    /// false only for background application chunks).
    fn note_busy(&mut self, now: SimTime, delta: i64, fg: bool) {
        self.busy.update(now.as_nanos(), delta);
        self.fg_busy
            .update(now.as_nanos(), if fg { delta } else { 0 });
    }

    /// True when the model runs the elastic control plane.
    fn is_elastic(&self) -> bool {
        self.elastic.is_some()
    }

    /// The core that serves packets homed on `home` (identity unless the
    /// home core is parked and its RSS queue was redirected).
    fn serving_core(&self, home: usize) -> usize {
        match &self.elastic {
            Some(e) => e.redirect[home],
            None => home,
        }
    }

    /// Wakes every idle granted core (something steal-able appeared).
    fn wake_idle(&self, sched: &mut Scheduler<Ev>) {
        for (i, c) in self.cores.iter().enumerate() {
            if c.active && c.is_idle() {
                sched.at(sched.now(), Ev::Run(i));
            }
        }
    }

    /// Wakes one core if granted and idle.
    fn wake(&self, core: usize, sched: &mut Scheduler<Ev>) {
        if self.cores[core].active && self.cores[core].is_idle() {
            sched.at(sched.now(), Ev::Run(core));
        }
    }

    /// Sends an IPI to `target` if one is not already in flight.
    fn send_ipi(&mut self, target: usize, sched: &mut Scheduler<Ev>) {
        if !self.cores[target].ipi_pending {
            self.cores[target].ipi_pending = true;
            sched.after(ns(self.cfg.cost.ipi_delivery_ns), Ev::Ipi(target));
        }
    }

    /// Applies RX-batch effects: packets join their connections' event
    /// queues; idle connections become ready on this core's shuffle queue.
    fn apply_net_batch(&mut self, core: usize, batch: Vec<Req>, sched: &mut Scheduler<Ev>) {
        // In elastic mode the executing core may have been parked while
        // this net chunk was in flight (apply_allocation drains queues
        // only on the transition): enqueue on its serving core, or the
        // ready connections would be stranded on a queue nothing scans.
        let dst = self.serving_core(core);
        let mut newly_ready = false;
        for req in batch {
            let conn = &mut self.conns[req.conn as usize];
            conn.pending.push_back(req);
            if conn.st == ConnSt::Idle {
                conn.st = ConnSt::Ready;
                self.cores[dst].shuffle.push_back(req.conn);
                newly_ready = true;
            }
        }
        if newly_ready {
            // Ready connections are steal-able: every idle core may act.
            self.wake_idle(sched);
        }
    }

    /// Begins executing an application event batch for `conn` on `core`.
    #[allow(clippy::too_many_arguments)]
    fn begin_app(
        &mut self,
        core: usize,
        conn: u32,
        extra_ns: u64,
        stolen: bool,
        bg: bool,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let c = &mut self.conns[conn as usize];
        debug_assert_eq!(c.st, ConnSt::Busy);
        let mut events = std::mem::take(&mut c.pending);
        debug_assert!(!events.is_empty(), "ready connection without events");
        let cur = events.pop_front().expect("non-empty");
        self.schedule_app_chunk(core, conn, cur, events, stolen, bg, extra_ns, now, sched);
    }

    /// Installs one application chunk on `core` and schedules its end event
    /// — `WorkDone` at completion, or `Preempt` at quantum expiry when the
    /// chunk's service time overshoots the quantum.
    #[allow(clippy::too_many_arguments)]
    fn schedule_app_chunk(
        &mut self,
        core: usize,
        conn: u32,
        mut cur: Req,
        rest: VecDeque<Req>,
        stolen: bool,
        bg: bool,
        extra_ns: u64,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        self.note_busy(now, 1, !bg);
        let slice = self.quantum.slice(cur.service.as_nanos());
        let core_ref = &mut self.cores[core];
        core_ref.epoch += 1;
        let epoch = core_ref.epoch;
        match slice {
            Some(s) => {
                // Run one quantum of service, then take the timer interrupt
                // (charged at the handler's cost) and requeue the rest. The
                // completion syscalls are not issued by a preempted slice,
                // so only the dispatch cost applies on this chunk.
                cur.service = SimDuration::from_nanos(s.run_ns);
                let dur = self.cfg.cost.event_dispatch_ns
                    + s.run_ns
                    + self.cfg.cost.ipi_handler_ns
                    + extra_ns;
                let core_ref = &mut self.cores[core];
                core_ref.slice_remaining_ns = s.remaining_ns;
                core_ref.work = Some(Work::App {
                    conn,
                    cur,
                    rest,
                    stolen,
                    bg,
                });
                core_ref.end = now + ns(dur);
                sched.at(core_ref.end, Ev::Preempt { core, epoch });
            }
            None => {
                let dur = self.event_exec_ns(&cur, stolen) + extra_ns;
                let core_ref = &mut self.cores[core];
                core_ref.slice_remaining_ns = 0;
                core_ref.work = Some(Work::App {
                    conn,
                    cur,
                    rest,
                    stolen,
                    bg,
                });
                core_ref.end = now + ns(dur);
                sched.at(core_ref.end, Ev::WorkDone { core, epoch });
            }
        }
    }

    /// CPU time of one application event on its execution core.
    ///
    /// Home execution transmits inline (eager TX, §6.2); stolen execution
    /// ships its syscalls home instead (the shipping enqueue is folded into
    /// the home core's `remote_syscall_ns`).
    fn event_exec_ns(&self, req: &Req, stolen: bool) -> u64 {
        let c = &self.cfg.cost;
        let mut ns = c.event_dispatch_ns + req.service.as_nanos() + c.syscall_batch_ns;
        if !stolen {
            ns += c.stack_tx_per_msg_ns;
        }
        ns
    }

    /// The core scheduling loop (priorities 1–6 of the module docs).
    fn run_core(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if !self.cores[core].active {
            return; // Parked by the elastic controller; queues were drained.
        }
        if self.cores[core].work.is_some() {
            return; // Busy; it will rerun at WorkDone.
        }
        let cost = self.cfg.cost.clone();

        // 1. Remote syscalls (TX for stolen executions) — highest priority:
        // they hold finished responses.
        if !self.cores[core].remote_sys.is_empty() {
            let batch = std::mem::take(&mut self.cores[core].remote_sys);
            let dur = (cost.remote_syscall_ns + cost.stack_tx_per_msg_ns) * batch.len() as u64;
            self.note_busy(now, 1, true);
            let c = &mut self.cores[core];
            c.work = Some(Work::RemoteTx { batch });
            c.epoch += 1;
            c.end = now + ns(dur);
            sched.at(
                c.end,
                Ev::WorkDone {
                    core,
                    epoch: c.epoch,
                },
            );
            return;
        }

        // 1b. Aged background connection: a preempted remainder that has
        // waited ≥ BG_AGING_QUANTA quanta outranks fresh work.
        if let Some(&(conn, since)) = self.cores[core].bg.front() {
            let age_bound = ns(self.quantum.quantum_ns().saturating_mul(BG_AGING_QUANTA));
            if now.duration_since(since) >= age_bound {
                self.cores[core].bg.pop_front();
                debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
                self.conns[conn as usize].st = ConnSt::Busy;
                // Promoted by aging: overdue work is foreground demand.
                self.begin_app(core, conn, cost.shuffle_op_ns, false, false, now, sched);
                return;
            }
        }

        // 2. Own shuffle queue.
        if let Some(conn) = self.cores[core].shuffle.pop_front() {
            debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
            self.conns[conn as usize].st = ConnSt::Busy;
            self.begin_app(core, conn, cost.shuffle_op_ns, false, false, now, sched);
            return;
        }

        // 3. Own NIC ring: run the network stack over a bounded batch.
        if !self.cores[core].ring.is_empty() {
            let k = (self.cores[core].ring.len() as u64).min(self.cfg.rx_batch.max(1));
            let batch: Vec<Req> = (0..k)
                .map(|_| self.cores[core].ring.pop_front().expect("non-empty ring"))
                .collect();
            let dur = cost.driver_batch_fixed_ns
                + k * (cost.driver_per_pkt_ns + cost.stack_rx_per_pkt_ns);
            self.note_busy(now, 1, true);
            let c = &mut self.cores[core];
            c.work = Some(Work::Net { batch });
            c.epoch += 1;
            c.end = now + ns(dur);
            sched.at(
                c.end,
                Ev::WorkDone {
                    core,
                    epoch: c.epoch,
                },
            );
            return;
        }

        // 4. Steal from another core's shuffle queue (randomized order,
        // unless the ablation knob disables it).
        let mut victims = std::mem::take(&mut self.victims);
        if self.cfg.randomize_steal_order {
            self.source.rng_mut().shuffle(&mut victims);
        }
        let mut stolen_conn = None;
        for &v in &victims {
            if v == core || !self.cores[v].active {
                continue;
            }
            if let Some(conn) = self.cores[v].shuffle.pop_front() {
                stolen_conn = Some(conn);
                break;
            }
        }
        if let Some(conn) = stolen_conn {
            self.victims = victims;
            debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
            self.conns[conn as usize].st = ConnSt::Busy;
            self.begin_app(
                core,
                conn,
                cost.shuffle_op_ns + cost.steal_extra_ns,
                true,
                false,
                now,
                sched,
            );
            return;
        }

        // 4b. Background (preempted) connections — own queue, then steal.
        // They run only when no fresh work is visible anywhere: a
        // quantum-expired request is known long, and deferring it behind
        // everything short is the approximate-SJF move that bounds the
        // dispersive tail (Shinjuku's main/preempted two-level queue).
        let mut bg_conn = None;
        let mut bg_extra = cost.shuffle_op_ns;
        if let Some((conn, _)) = self.cores[core].bg.pop_front() {
            bg_conn = Some((conn, false));
        } else {
            for &v in &victims {
                if v == core || !self.cores[v].active {
                    continue;
                }
                if let Some((conn, _)) = self.cores[v].bg.pop_front() {
                    bg_conn = Some((conn, true));
                    bg_extra += cost.steal_extra_ns;
                    break;
                }
            }
        }
        if let Some((conn, stolen)) = bg_conn {
            self.victims = victims;
            debug_assert_eq!(self.conns[conn as usize].st, ConnSt::Ready);
            self.conns[conn as usize].st = ConnSt::Busy;
            self.begin_app(core, conn, bg_extra, stolen, true, now, sched);
            return;
        }

        // 5. Scan remote NIC rings; IPI home cores stuck in application
        // code ("aggressively sends interrupts as soon as a remote core
        // detects a pending packet in the hardware queue and the home core
        // is executing at user-level", §5).
        if self.ipis_enabled {
            let mut target = None;
            for &v in &victims {
                if v == core || !self.cores[v].active {
                    continue;
                }
                if !self.cores[v].ring.is_empty()
                    && self.cores[v].in_app()
                    && !self.cores[v].ipi_pending
                {
                    target = Some(v);
                    break;
                }
            }
            if let Some(v) = target {
                self.send_ipi(v, sched);
            }
        }
        self.victims = victims;

        // 6. Idle. Woken by wake()/wake_idle() on any actionable change.
    }

    fn work_done(&mut self, core: usize, epoch: u64, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.cores[core].epoch != epoch {
            return; // Invalidated by an IPI extension.
        }
        let work = self.cores[core]
            .work
            .take()
            .expect("work present at WorkDone");
        let was_bg = matches!(work, Work::App { bg: true, .. });
        self.note_busy(now, -1, !was_bg);
        match work {
            Work::Net { batch } => {
                self.apply_net_batch(core, batch, sched);
            }
            Work::RemoteTx { batch } => {
                for req in &batch {
                    self.rec.complete(req, now);
                }
            }
            Work::App {
                conn,
                cur,
                mut rest,
                stolen,
                bg,
            } => {
                if stolen {
                    self.stolen_events += 1;
                    // Ship the response home; the home core (or, in
                    // elastic mode, whichever core serves its queues)
                    // transmits.
                    let home = self.serving_core(cur.home as usize);
                    self.cores[home].remote_sys.push(cur);
                    if self.cores[home].is_idle() {
                        self.wake(home, sched);
                    } else if self.ipis_enabled && self.cores[home].in_app() {
                        self.send_ipi(home, sched);
                    }
                } else {
                    self.local_events += 1;
                    self.rec.complete(&cur, now);
                }
                if let Some(next) = rest.pop_front() {
                    // Continue the connection's event batch (implicit
                    // per-flow batching, §6.2).
                    self.schedule_app_chunk(core, conn, next, rest, stolen, bg, 0, now, sched);
                    return;
                }
                // Batch finished: Figure 5 transition out of busy.
                let connref = &mut self.conns[conn as usize];
                if connref.pending.is_empty() {
                    connref.st = ConnSt::Idle;
                } else {
                    connref.st = ConnSt::Ready;
                    let home = self.serving_core(self.source.home_of(conn) as usize);
                    self.cores[home].shuffle.push_back(conn);
                    self.wake_idle(sched);
                }
            }
        }
        // Re-enter the scheduling loop.
        self.run_core(core, now, sched);
    }

    /// Quantum expiry: requeue the remainder of the interrupted request at
    /// the back of its serving core's shuffle queue, behind any shorter
    /// requests that arrived meanwhile — the anti-head-of-line move.
    fn preempt(&mut self, core: usize, epoch: u64, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.cores[core].epoch != epoch {
            return; // Invalidated (e.g. an IPI extended the chunk).
        }
        let remaining = self.cores[core].slice_remaining_ns;
        self.cores[core].slice_remaining_ns = 0;
        let work = self.cores[core]
            .work
            .take()
            .expect("work present at Preempt");
        let was_bg = matches!(work, Work::App { bg: true, .. });
        self.note_busy(now, -1, !was_bg);
        let Work::App {
            conn,
            mut cur,
            rest,
            ..
        } = work
        else {
            unreachable!("only application chunks are sliced");
        };
        debug_assert!(remaining > 0, "preempted chunk must have a remainder");
        self.preemptions += 1;
        cur.service = SimDuration::from_nanos(remaining);
        // Requeue: the remainder stays the connection's oldest event (so
        // per-connection ordering holds), followed by the rest of the taken
        // batch, then anything that arrived during the slice.
        let connref = &mut self.conns[conn as usize];
        debug_assert_eq!(connref.st, ConnSt::Busy);
        let arrived = std::mem::take(&mut connref.pending);
        connref.pending.push_back(cur);
        connref.pending.extend(rest);
        connref.pending.extend(arrived);
        connref.st = ConnSt::Ready;
        let home = self.serving_core(self.source.home_of(conn) as usize);
        self.cores[home].bg.push_back((conn, now));
        self.wake_idle(sched);
        // The interrupted core re-enters its scheduling loop (the handler
        // cost was charged inside the chunk).
        self.run_core(core, now, sched);
    }

    /// Elastic-controller tick: observe load, apply the allocator's
    /// decision, reschedule.
    fn control(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.note_busy(now, 0, true); // Flush the busy integrals up to `now`.
        let busy_integral = self.fg_busy.integral_ns;
        let Some(elastic) = &mut self.elastic else {
            return;
        };
        // Utilization, time-averaged since the previous tick: instantaneous
        // busy-core counts swing wildly under bursty Poisson arrivals.
        let dt = now.as_nanos() - elastic.last_ctl_ns;
        let busy = if dt == 0 {
            self.fg_busy.count as f64
        } else {
            (busy_integral - elastic.last_ctl_busy_integral) as f64 / dt as f64
        };
        elastic.last_ctl_busy_integral = busy_integral;
        elastic.last_ctl_ns = now.as_nanos();
        // Backlog = work waiting involuntarily. Un-aged background entries
        // are deferred *by policy* (they run in idle gaps) and would
        // otherwise read as queue pressure that blocks parking at low
        // load; only overdue (aged) entries count.
        let age_bound = ns(self.quantum.quantum_ns().saturating_mul(BG_AGING_QUANTA));
        let mut backlog = 0;
        for c in &self.cores {
            if c.active {
                backlog += c.ring.len() + c.shuffle.len() + c.remote_sys.len();
                backlog +=
                    c.bg.iter()
                        .filter(|&&(_, since)| now.duration_since(since) >= age_bound)
                        .count();
            }
        }
        let decision = elastic.allocator.observe(LoadSignal {
            busy_cores: busy,
            backlog,
        });
        if elastic.trace {
            eprintln!(
                "ctl t={:.0}us busy={busy:.2} backlog={backlog} util~{:.2} press~{:.2} active={} -> {decision:?}",
                now.as_micros_f64(),
                elastic.allocator.util_ewma(),
                elastic.allocator.press_ewma(),
                elastic.allocator.active(),
            );
        }
        let target = elastic.allocator.active();
        let period = elastic.period;
        if decision != Decision::Hold {
            self.apply_allocation(target, now, sched);
        }
        sched.after(period, Ev::Control);
    }

    /// Reconfigures the data plane to `target` granted cores: cores
    /// `[0, target)` are active, the rest park after draining their queues
    /// into an active core (modeling RSS indirection-table reprogramming
    /// plus queue migration — both controller-side, off the data path).
    fn apply_allocation(&mut self, target: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        let n = self.cores.len();
        for i in 0..n {
            let was = self.cores[i].active;
            self.cores[i].active = i < target;
            if was && !self.cores[i].active {
                // Drain a newly parked core into its redirect target.
                let dst = i % target;
                let ring: Vec<Req> = self.cores[i].ring.drain(..).collect();
                let shuffle: Vec<u32> = self.cores[i].shuffle.drain(..).collect();
                let bg: Vec<(u32, SimTime)> = self.cores[i].bg.drain(..).collect();
                let remote: Vec<Req> = self.cores[i].remote_sys.drain(..).collect();
                self.cores[dst].ring.extend(ring);
                self.cores[dst].shuffle.extend(shuffle);
                self.cores[dst].bg.extend(bg);
                self.cores[dst].remote_sys.extend(remote);
                self.wake(dst, sched);
            } else if !was && self.cores[i].active {
                self.wake(i, sched);
            }
        }
        if let Some(e) = &mut self.elastic {
            for (home, slot) in e.redirect.iter_mut().enumerate() {
                *slot = if home < target { home } else { home % target };
            }
            e.meter.set_active(now.as_nanos(), target);
        }
    }

    fn ipi(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        self.cores[core].ipi_pending = false;
        self.ipis_delivered += 1;
        if !self.cores[core].in_app() {
            // Not in user code: the loop will find the work itself.
            self.wake(core, sched);
            return;
        }
        let cost = self.cfg.cost.clone();
        let mut ext_ns = cost.ipi_handler_ns;
        // Handler duty 1: replenish the shuffle queue if it ran dry.
        if self.cores[core].shuffle.is_empty() && !self.cores[core].ring.is_empty() {
            let k = (self.cores[core].ring.len() as u64).min(self.cfg.rx_batch.max(1));
            let batch: Vec<Req> = (0..k)
                .map(|_| self.cores[core].ring.pop_front().expect("non-empty"))
                .collect();
            ext_ns += cost.driver_batch_fixed_ns
                + k * (cost.driver_per_pkt_ns + cost.stack_rx_per_pkt_ns);
            self.apply_net_batch(core, batch, sched);
        }
        // Handler duty 2: flush remote syscalls / transmit.
        if !self.cores[core].remote_sys.is_empty() {
            let batch = std::mem::take(&mut self.cores[core].remote_sys);
            ext_ns += (cost.remote_syscall_ns + cost.stack_tx_per_msg_ns) * batch.len() as u64;
            let tx_at = now + ns(cost.ipi_handler_ns);
            for req in &batch {
                self.rec.complete(req, tx_at);
            }
        }
        // The interrupted application event finishes later by the handler's
        // execution time: invalidate and reschedule its completion (or its
        // quantum expiry, if the chunk is a preemption slice).
        let ext = ns(ext_ns);
        let c = &mut self.cores[core];
        c.end += ext;
        c.epoch += 1;
        let (end, epoch) = (c.end, c.epoch);
        if c.slice_remaining_ns > 0 {
            sched.at(end, Ev::Preempt { core, epoch });
        } else {
            sched.at(end, Ev::WorkDone { core, epoch });
        }
    }

    pub(crate) fn into_output(mut self, final_time: SimTime) -> SysOutput {
        self.note_busy(final_time, 0, true);
        if std::env::var_os("ZYGOS_ELASTIC_TRACE").is_some() {
            eprintln!(
                "run avg_busy={:.2} (fg {:.2}) over {:.0}us",
                self.busy.integral_ns as f64 / final_time.as_nanos().max(1) as f64,
                self.fg_busy.integral_ns as f64 / final_time.as_nanos().max(1) as f64,
                final_time.as_micros_f64()
            );
        }
        let sim_time_us = if self.rec.window_us() > 0.0 {
            self.rec.window_us()
        } else {
            final_time.as_micros_f64()
        };
        let avg_active_cores = match &self.elastic {
            // Average over the measurement window when we have its start
            // snapshot; otherwise over the whole run.
            Some(e) => match e.meas_snapshot {
                Some((t0, core_ns0)) if final_time.as_nanos() > t0 => {
                    (e.meter.core_ns(final_time.as_nanos()) - core_ns0) as f64
                        / (final_time.as_nanos() - t0) as f64
                }
                _ => e.meter.avg_cores(final_time.as_nanos(), 0),
            },
            None => self.cfg.cores as f64,
        };
        SysOutput {
            latency: self.rec.latency.clone(),
            completed: self.rec.measured(),
            sim_time_us,
            local_events: self.local_events,
            stolen_events: self.stolen_events,
            ipis: self.ipis_delivered,
            preemptions: self.preemptions,
            avg_active_cores,
        }
    }
}

impl Model for ZygosModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.rec.is_done() {
            sched.stop();
            return;
        }
        if let Some(e) = &mut self.elastic {
            if e.meas_snapshot.is_none() && self.rec.measurement_started() {
                e.meas_snapshot = Some((now.as_nanos(), e.meter.core_ns(now.as_nanos())));
            }
        }
        match ev {
            Ev::Gen => {
                let req = self.source.next_req(now);
                sched.after(self.source.half_rtt, Ev::Packet(req));
                let gap = self.source.next_gap();
                sched.after(gap, Ev::Gen);
            }
            Ev::Packet(req) => {
                let home = self.serving_core(req.home as usize);
                self.cores[home].ring.push_back(req);
                if self.cores[home].is_idle() {
                    self.wake(home, sched);
                } else if self.ipis_enabled
                    && self.cores[home].in_app()
                    && self.cores.iter().any(|c| c.active && c.is_idle())
                {
                    // An idle core's poll sweep (steps c–d) would spot this
                    // packet almost immediately and interrupt the home core.
                    self.send_ipi(home, sched);
                }
            }
            Ev::Run(core) => self.run_core(core, now, sched),
            Ev::WorkDone { core, epoch } => self.work_done(core, epoch, now, sched),
            Ev::Ipi(core) => self.ipi(core, now, sched),
            Ev::Preempt { core, epoch } => self.preempt(core, epoch, now, sched),
            Ev::Control => self.control(now, sched),
        }
    }
}

/// Runs the ZygOS-family system simulation (static, no-interrupts, or
/// elastic).
pub(crate) fn run(cfg: &SysConfig) -> SysOutput {
    debug_assert!(matches!(
        cfg.system,
        SystemKind::Zygos | SystemKind::ZygosNoInterrupts | SystemKind::Elastic { .. }
    ));
    let model = ZygosModel::new(cfg.clone());
    let elastic = model.is_elastic();
    let mut engine = Engine::new(model);
    engine.schedule(SimTime::ZERO, Ev::Gen);
    if elastic {
        engine.schedule(SimTime::ZERO, Ev::Control);
    }
    engine.run();
    let now = engine.now();
    engine.into_model().into_output(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zygos_sim::dist::ServiceDist;

    fn quick(system: SystemKind, load: f64, mean_us: f64) -> SysOutput {
        let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(mean_us), load);
        cfg.requests = 20_000;
        cfg.warmup = 4_000;
        run(&cfg)
    }

    #[test]
    fn completes_all_requests() {
        let out = quick(SystemKind::Zygos, 0.5, 10.0);
        assert_eq!(out.completed, 20_000);
        assert_eq!(out.latency.count(), 20_000);
    }

    #[test]
    fn low_load_latency_near_service_plus_overheads() {
        let out = quick(SystemKind::Zygos, 0.05, 10.0);
        // p99 of Exp(10µs) is 46µs; add RTT (4µs) and ~2µs of overheads.
        let p99 = out.p99_us();
        assert!((46.0..60.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn throughput_tracks_offered_load() {
        let out = quick(SystemKind::Zygos, 0.6, 10.0);
        // Offered: 0.6 × 16/10µs = 0.96 MRPS.
        let thr = out.throughput_mrps();
        assert!((thr - 0.96).abs() < 0.06, "throughput = {thr}");
    }

    #[test]
    fn steals_occur_at_moderate_load() {
        let out = quick(SystemKind::Zygos, 0.5, 10.0);
        assert!(
            out.steal_fraction() > 0.05,
            "steal fraction = {}",
            out.steal_fraction()
        );
        assert!(out.ipis > 0, "IPIs should fire");
    }

    #[test]
    fn no_interrupt_mode_sends_no_ipis() {
        let out = quick(SystemKind::ZygosNoInterrupts, 0.5, 10.0);
        assert_eq!(out.ipis, 0);
        assert!(out.steal_fraction() > 0.0, "stealing still happens");
    }

    #[test]
    fn interrupts_help_tail_latency_at_high_load() {
        let with = quick(SystemKind::Zygos, 0.75, 10.0);
        let without = quick(SystemKind::ZygosNoInterrupts, 0.75, 10.0);
        assert!(
            with.p99_us() <= without.p99_us() * 1.05,
            "with {} vs without {}",
            with.p99_us(),
            without.p99_us()
        );
    }

    #[test]
    fn stable_near_saturation_point() {
        // At 85% of ideal saturation ZygOS must still complete (overheads
        // shave a few percent, so this sits below its real saturation).
        let out = quick(SystemKind::Zygos, 0.85, 25.0);
        assert_eq!(out.completed, 20_000);
        assert!(out.p99_us() < 2_000.0, "p99 = {}", out.p99_us());
    }
}
