//! Open-loop client source and completion recording.
//!
//! The clients approximate mutilate's open-loop mode (§3.1): request
//! arrivals form a Poisson process; each request is issued on a uniformly
//! random connection out of the configured 2752. Connections are mapped to
//! home cores by the *real* RSS implementation (`zygos-net`), i.e. the same
//! Toeplitz hash + indirection table a multi-queue NIC would apply.

use zygos_load::source::ArrivalSource;
use zygos_net::flow::FiveTuple;
use zygos_net::rss::Rss;
use zygos_sim::dist::ServiceDist;
use zygos_sim::rng::Xoshiro256;
use zygos_sim::stats::LatencyHistogram;
use zygos_sim::time::{SimDuration, SimTime};

use crate::config::SysConfig;

/// One in-flight request.
#[derive(Clone, Copy, Debug)]
pub struct Req {
    /// Connection index.
    pub conn: u32,
    /// Monotonic request sequence number (generation order) — the
    /// telemetry plane's correlation key and sampling gate. Stamped from
    /// a counter, never an RNG, so tracing cannot perturb the workload.
    pub seq: u32,
    /// Home core of the connection (RSS).
    pub home: u16,
    /// Client send timestamp.
    pub send: SimTime,
    /// Sampled application service time.
    pub service: SimDuration,
}

/// The open-loop request source. Gap generation is delegated to the
/// configured [`zygos_load::source::ArrivalSpec`] (Poisson by default;
/// phases or trace replay modulate the instantaneous rate while keeping
/// the long-run mean at `cfg.lambda_per_us()`).
///
/// `Clone` duplicates the full client state — RNG position, sequence
/// counter, arrival-process cursor — so a cloned source emits exactly the
/// request stream the original would have (the checkpoint plane's
/// exact-resume guarantee; see `docs/TAIL.md`).
#[derive(Clone)]
pub struct Source {
    rng: Xoshiro256,
    conn_home: Vec<u16>,
    service: ServiceDist,
    arrivals: Box<dyn ArrivalSource>,
    next_seq: u32,
    /// One-way wire latency (half the configured RTT).
    pub half_rtt: SimDuration,
}

impl Source {
    /// Builds the source (and the RSS connection→core map) for a config.
    pub fn new(cfg: &SysConfig) -> Self {
        let rss = Rss::new(cfg.cores);
        let conn_home = (0..cfg.conns)
            .map(|i| rss.queue_for(&FiveTuple::synthetic(i)) as u16)
            .collect();
        Source {
            rng: Xoshiro256::new(cfg.seed),
            conn_home,
            service: cfg.service.clone(),
            arrivals: cfg.arrivals.source(cfg.lambda_per_us()),
            next_seq: 0,
            half_rtt: SimDuration::from_nanos(cfg.cost.network_rtt_ns / 2),
        }
    }

    /// Re-rates a converged source for a warm-started neighbor run: the
    /// arrival process is rebuilt at `cfg`'s offered load while the RNG
    /// position, RSS map, and sequence counter carry over. A memoryless
    /// (Poisson) process has no cursor to lose; phased/trace processes
    /// restart their schedule exactly as a cold run at the new load would.
    pub fn retarget(&mut self, cfg: &SysConfig) {
        self.service = cfg.service.clone();
        self.arrivals = cfg.arrivals.source(cfg.lambda_per_us());
    }

    /// Forks the workload RNG onto an independent stream (importance
    /// splitting gives each cloned trajectory its own arrival/service
    /// randomness; the master keeps the original stream).
    pub fn fork_rng(&mut self, stream: u64) {
        self.rng = self.rng.fork(stream);
    }

    /// Home core of connection `conn`.
    pub fn home_of(&self, conn: u32) -> u16 {
        self.conn_home[conn as usize]
    }

    /// Time until the next arrival.
    pub fn next_gap(&mut self) -> SimDuration {
        SimDuration::from_micros_f64(self.arrivals.next_gap_us(&mut self.rng))
    }

    /// Generates the next request, stamped with send time `now`.
    pub fn next_req(&mut self, now: SimTime) -> Req {
        let conn = self.rng.next_bounded(self.conn_home.len() as u64) as u32;
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        Req {
            conn,
            seq,
            home: self.conn_home[conn as usize],
            send: now,
            service: self.service.sample(&mut self.rng),
        }
    }

    /// Requests emitted by [`Source::next_req`] so far — the `generated`
    /// side of the conservation identity the fleet proptests pin.
    pub fn emitted(&self) -> u64 {
        self.next_seq as u64
    }
}

/// Completion recorder with warmup handling and a measurement window.
#[derive(Clone)]
pub struct Recorder {
    /// End-to-end latency histogram (measured completions only).
    pub latency: LatencyHistogram,
    half_rtt: SimDuration,
    completed: u64,
    warmup: u64,
    target: u64,
    meas_start: SimTime,
    meas_end: SimTime,
    done: bool,
    /// Per-completion latency samples (ns), kept only when armed: the
    /// importance-splitting estimator needs individual samples to weight,
    /// not the aggregate histogram. Drained between splitting segments.
    tail: Option<Vec<u64>>,
}

impl Recorder {
    /// Creates a recorder for `cfg`.
    pub fn new(cfg: &SysConfig, half_rtt: SimDuration) -> Self {
        Recorder::warm(cfg.requests, cfg.warmup, half_rtt, SimTime::ZERO)
    }

    /// Creates a recorder whose measurement window opens no earlier than
    /// `start` — the warm-start splice point. A cold run passes
    /// [`SimTime::ZERO`]; a warm-started run passes the checkpoint time so
    /// a zero-warmup window cannot reach back before the splice.
    pub fn warm(target: u64, warmup: u64, half_rtt: SimDuration, start: SimTime) -> Self {
        Recorder {
            latency: LatencyHistogram::new(),
            half_rtt,
            completed: 0,
            warmup,
            target,
            meas_start: start,
            meas_end: start,
            done: false,
            tail: None,
        }
    }

    /// Arms per-completion sample collection (importance splitting).
    pub fn arm_tail_sampling(&mut self) {
        if self.tail.is_none() {
            self.tail = Some(Vec::new());
        }
    }

    /// Takes the per-completion samples collected since the last drain.
    pub fn drain_tail(&mut self) -> Vec<u64> {
        self.tail.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Records that `req`'s response left the server at `tx_time`.
    ///
    /// The client observes it half an RTT later. Returns `true` when the
    /// completion landed in the measurement window (i.e. the latency
    /// histogram recorded it) — the telemetry plane uses this to trace
    /// exactly the histogram's population, no more, no less.
    pub fn complete(&mut self, req: &Req, tx_time: SimTime) -> bool {
        if self.done {
            return false;
        }
        self.completed += 1;
        if self.completed == self.warmup {
            self.meas_start = tx_time;
        }
        if self.completed > self.warmup {
            let client_rx = tx_time + self.half_rtt;
            let lat = client_rx.duration_since(req.send);
            self.latency.record(lat);
            if let Some(buf) = &mut self.tail {
                buf.push(lat.as_nanos());
            }
            if self.completed - self.warmup >= self.target {
                self.done = true;
                self.meas_end = tx_time;
            }
            return true;
        }
        false
    }

    /// True once the target completion count is reached.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True once warmup has completed and the measurement window is open.
    pub fn measurement_started(&self) -> bool {
        self.completed >= self.warmup
    }

    /// Measured completions (excluding warmup).
    pub fn measured(&self) -> u64 {
        self.completed.saturating_sub(self.warmup)
    }

    /// All completions, warmup included — the `completed_total` side of
    /// the conservation identity.
    pub fn completed_total(&self) -> u64 {
        self.completed
    }

    /// Length of the measurement window in microseconds.
    pub fn window_us(&self) -> f64 {
        self.meas_end
            .duration_since(self.meas_start)
            .as_micros_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SysConfig, SystemKind};

    fn cfg() -> SysConfig {
        SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), 0.5)
    }

    #[test]
    fn rss_maps_all_cores() {
        let s = Source::new(&cfg());
        let homes: std::collections::HashSet<u16> = (0..2752).map(|c| s.home_of(c)).collect();
        assert_eq!(homes.len(), 16, "all 16 cores should own flow groups");
    }

    #[test]
    fn arrival_rate_matches_load() {
        let c = cfg();
        let mut s = Source::new(&c);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| s.next_gap().as_micros_f64()).sum();
        let rate = n as f64 / total;
        // load 0.5 × 16 cores / 10µs = 0.8 req/µs.
        assert!((rate - 0.8).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn recorder_warmup_and_window() {
        let c = SysConfig {
            warmup: 2,
            requests: 3,
            ..cfg()
        };
        let mut r = Recorder::new(&c, SimDuration::from_micros(2));
        let req = Req {
            conn: 0,
            seq: 0,
            home: 0,
            send: SimTime::ZERO,
            service: SimDuration::from_micros(1),
        };
        for i in 1..=5u64 {
            assert!(!r.is_done());
            r.complete(&req, SimTime::from_micros(10 * i));
        }
        assert!(r.is_done());
        assert_eq!(r.measured(), 3);
        assert_eq!(r.latency.count(), 3);
        // Window spans completion 2 (warmup end) to completion 5.
        assert!((r.window_us() - 30.0).abs() < 1e-9);
        // Latency includes the return half-RTT: 30µs + 2µs for the 3rd.
        assert_eq!(r.latency.min_nanos(), 32_000);
    }

    #[test]
    fn recorder_ignores_after_done() {
        let c = SysConfig {
            warmup: 0,
            requests: 1,
            ..cfg()
        };
        let mut r = Recorder::new(&c, SimDuration::ZERO);
        let req = Req {
            conn: 0,
            seq: 0,
            home: 0,
            send: SimTime::ZERO,
            service: SimDuration::from_micros(1),
        };
        r.complete(&req, SimTime::from_micros(1));
        r.complete(&req, SimTime::from_micros(2));
        assert_eq!(r.latency.count(), 1);
    }
}
