//! The Linux baselines (paper §3.3).
//!
//! * **Linux-partitioned**: each thread (pinned one per core) owns the
//!   connections RSS steers to it and epolls over that private set.
//!   Idealized by `n×M/G/1/FCFS` with Linux's per-request kernel cost.
//! * **Linux-floating**: all connections live in one shared pool from which
//!   every thread may poll; claiming a ready socket requires a serializing
//!   lock (the paper's implementation uses "a simple locking protocol to
//!   serialize access to the same socket"). Idealized by `M/G/n/FCFS` plus
//!   the lock's serialization and the same per-request kernel cost.
//!
//! Both models charge `linux_per_req_ns` of kernel time per request
//! (softirq RX, `epoll_wait`, `read`, `write`, scheduler wakeups), the
//! overhead that makes Linux converge to its ideal bound only for tasks of
//! ~100µs and up (Figure 3).
//!
//! Dispatch order comes from the shared policy plane: both variants run
//! the [`FcfsPolicy`] ladder (serve the ready queue, never steal —
//! rebalancing, where it exists, comes from the queue being shared), so
//! this file owns only the Linux *mechanisms*: the per-core/shared queues,
//! the kernel cost and the floating-pool lock.

use std::collections::VecDeque;

use zygos_sched::{DispatchPolicy, FcfsPolicy, Rung};
use zygos_sim::engine::{Engine, Model, Scheduler};
use zygos_sim::time::{SimDuration, SimTime};

use crate::arrivals::{Recorder, Req, Source};
use crate::config::{SysConfig, SysOutput, SystemKind};

enum Ev {
    Gen,
    Packet(Req),
    Run(usize),
    Done { core: usize, req: Req },
}

struct LinuxModel {
    cfg: SysConfig,
    source: Source,
    rec: Recorder,
    /// One queue per core (partitioned) or a single queue (floating).
    queues: Vec<VecDeque<Req>>,
    busy: Vec<bool>,
    floating: bool,
    /// The shared dispatch policy: FCFS, no stealing.
    dispatch: FcfsPolicy,
    /// Floating only: time at which the shared-pool lock frees up.
    lock_free_at: SimTime,
    events_done: u64,
}

impl LinuxModel {
    fn new(cfg: SysConfig) -> Self {
        let floating = cfg.system == SystemKind::LinuxFloating;
        let source = Source::new(&cfg);
        let rec = Recorder::new(&cfg, source.half_rtt);
        LinuxModel {
            queues: vec![VecDeque::new(); if floating { 1 } else { cfg.cores }],
            busy: vec![false; cfg.cores],
            floating,
            dispatch: FcfsPolicy,
            lock_free_at: SimTime::ZERO,
            source,
            rec,
            cfg,
            events_done: 0,
        }
    }

    fn queue_of(&self, core: usize) -> usize {
        if self.floating {
            0
        } else {
            core
        }
    }

    /// The core loop: walk the policy's dispatch ladder. The Linux models
    /// have no separate network stage (the kernel cost is charged per
    /// request), so only the ready-queue rung binds to a mechanism here.
    fn run_core(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.busy[core] {
            return;
        }
        let policy = self.dispatch;
        for &rung in policy.ladder() {
            let took = match rung {
                Rung::LocalReady => self.rung_local_ready(core, now, sched),
                // No per-rung mechanism in this model; in particular the
                // steal rungs never appear (FCFS policies do not steal).
                _ => false,
            };
            if took {
                return;
            }
        }
    }

    /// Serve the next request of this core's FCFS queue (the shared pool
    /// when floating, behind its serializing lock).
    fn rung_local_ready(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) -> bool {
        let q = self.queue_of(core);
        let Some(req) = self.queues[q].pop_front() else {
            return false;
        };
        self.busy[core] = true;
        let cost = &self.cfg.cost;
        let mut start = now;
        if self.floating {
            // Serialize on the shared-pool lock: wait for it, hold it for
            // the claim, then proceed.
            let acquire = now.max(self.lock_free_at);
            self.lock_free_at = acquire + SimDuration::from_nanos(cost.linux_float_lock_ns);
            start = self.lock_free_at;
        }
        let end = start + SimDuration::from_nanos(cost.linux_per_req_ns) + req.service;
        sched.at(end, Ev::Done { core, req });
        true
    }

    fn wake_for_queue(&mut self, q: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.floating {
            // EPOLLEXCLUSIVE semantics: wake one idle thread.
            if let Some(core) = (0..self.cfg.cores).find(|&c| !self.busy[c]) {
                sched.at(now, Ev::Run(core));
            }
        } else {
            sched.at(now, Ev::Run(q));
        }
    }
}

impl Model for LinuxModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.rec.is_done() {
            sched.stop();
            return;
        }
        match ev {
            Ev::Gen => {
                let req = self.source.next_req(now);
                sched.after(self.source.half_rtt, Ev::Packet(req));
                let gap = self.source.next_gap();
                sched.after(gap, Ev::Gen);
            }
            Ev::Packet(req) => {
                let q = if self.floating { 0 } else { req.home as usize };
                self.queues[q].push_back(req);
                self.wake_for_queue(q, now, sched);
            }
            Ev::Run(core) => self.run_core(core, now, sched),
            Ev::Done { core, req } => {
                self.rec.complete(&req, now);
                self.events_done += 1;
                self.busy[core] = false;
                self.run_core(core, now, sched);
            }
        }
    }
}

/// Runs a Linux system simulation (partitioned or floating).
pub(crate) fn run(cfg: &SysConfig) -> SysOutput {
    debug_assert!(matches!(
        cfg.system,
        SystemKind::LinuxPartitioned | SystemKind::LinuxFloating
    ));
    let mut engine = Engine::new(LinuxModel::new(cfg.clone()));
    engine.schedule(SimTime::ZERO, Ev::Gen);
    engine.run();
    let now = engine.now();
    let events = engine.processed();
    let model = engine.into_model();
    let window = model.rec.window_us();
    SysOutput {
        // The Linux models exist as latency/throughput baselines; the
        // lifecycle tracer instruments the ZygOS-family path only.
        telemetry: None,
        latency: model.rec.latency.clone(),
        completed: model.rec.measured(),
        generated: model.source.emitted(),
        completed_total: model.rec.completed_total(),
        events,
        sim_time_us: if window > 0.0 {
            window
        } else {
            now.as_micros_f64()
        },
        local_events: model.events_done,
        stolen_events: 0,
        ipis: 0,
        preemptions: 0,
        avg_active_cores: cfg.cores as f64,
        admitted: 0,
        rejected: 0,
        wire_rejects: 0,
        retries: 0,
        give_ups: 0,
        timeouts: 0,
        rtt_us: cfg.cost.network_rtt_ns as f64 / 1_000.0,
        rejected_by_class: vec![0],
        admitted_by_class: vec![0],
        stage_counts: Vec::new(),
        stage_p99_wait_us: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zygos_sim::dist::ServiceDist;

    fn quick(system: SystemKind, load: f64, mean_us: f64) -> SysOutput {
        let mut cfg = SysConfig::paper(system, ServiceDist::exponential_us(mean_us), load);
        cfg.requests = 20_000;
        cfg.warmup = 4_000;
        run(&cfg)
    }

    #[test]
    fn both_variants_complete() {
        for s in [SystemKind::LinuxPartitioned, SystemKind::LinuxFloating] {
            let out = quick(s, 0.3, 25.0);
            assert_eq!(out.completed, 20_000, "{}", s.label());
        }
    }

    #[test]
    fn floating_beats_partitioned_tail_for_medium_tasks() {
        // The paper's Figure 3(b): the centralized (floating) model
        // rebalances and wins for larger tasks despite the lock.
        let part = quick(SystemKind::LinuxPartitioned, 0.6, 50.0);
        let float = quick(SystemKind::LinuxFloating, 0.6, 50.0);
        assert!(
            float.p99_us() < part.p99_us(),
            "floating {} vs partitioned {}",
            float.p99_us(),
            part.p99_us()
        );
    }

    #[test]
    fn linux_overhead_visible_at_small_tasks() {
        // With 5µs tasks and ~11µs of kernel cost per request, latency is
        // dominated by overhead: p99 well above the bare service p99.
        let out = quick(SystemKind::LinuxPartitioned, 0.2, 5.0);
        let bare = 5.0 * 100f64.ln();
        assert!(out.p99_us() > bare + 8.0, "p99 = {}", out.p99_us());
    }

    #[test]
    fn floating_lock_serializes_at_extreme_rates() {
        // Offered dequeue rate above 1/lock_ns must saturate: p99 explodes.
        let mut cfg = SysConfig::paper(
            SystemKind::LinuxFloating,
            ServiceDist::deterministic_us(1.0),
            0.95,
        );
        cfg.requests = 10_000;
        cfg.warmup = 1_000;
        // 0.95 × 16/1µs = 15.2 req/µs offered, lock supports ~2.2/µs.
        let out = run(&cfg);
        assert!(out.p99_us() > 100.0, "p99 = {}", out.p99_us());
    }
}
