//! Experiment configuration and output types.

use zygos_load::retry::RetryPolicy;
use zygos_load::slo::TenantSlos;
use zygos_load::source::ArrivalSpec;
use zygos_net::cost::CostModel;
use zygos_sched::{BackgroundOrder, CreditConfig};
use zygos_sim::dist::ServiceDist;
use zygos_sim::stats::LatencyHistogram;
use zygos_telemetry::{TelemetryConfig, TelemetryOut};

use crate::staged::StagedConfig;

/// Which system model to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// ZygOS with work stealing and IPIs.
    Zygos,
    /// ZygOS in purely cooperative mode (no IPIs) — the
    /// `ZygOS (no interrupts)` curve of Figure 6.
    ZygosNoInterrupts,
    /// ZygOS with the `zygos-sched` elastic control plane: a periodic
    /// controller grants/revokes cores with hysteresis, parked cores hand
    /// their RSS queues to active ones, and (with a nonzero
    /// [`SysConfig::preemption_quantum_us`]) long application chunks are
    /// preempted at quantum expiry and requeued.
    Elastic {
        /// Floor on granted cores (the controller never parks below this).
        min_cores: usize,
    },
    /// IX: shared-nothing run-to-completion with bounded batching.
    Ix,
    /// Linux, connections partitioned across epoll sets.
    LinuxPartitioned,
    /// Linux, one shared (floating) epoll set behind a lock.
    LinuxFloating,
    /// The staged service plane: a request as an explicit multi-phase
    /// pipeline (`net_poll → net_stack → app`) with per-stage queues and
    /// a core layout, described by [`SysConfig::staged`]. The degenerate
    /// single-stage pipeline runs as plain [`SystemKind::Zygos`],
    /// bit-for-bit (see `crate::staged`).
    Staged,
}

impl SystemKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Zygos => "ZygOS",
            SystemKind::ZygosNoInterrupts => "ZygOS (no interrupts)",
            SystemKind::Elastic { .. } => "ZygOS (elastic)",
            SystemKind::Ix => "IX",
            SystemKind::LinuxPartitioned => "Linux (partitioned connections)",
            SystemKind::LinuxFloating => "Linux (floating connections)",
            SystemKind::Staged => "Staged pipeline",
        }
    }
}

/// Which [`zygos_sched::AllocPolicy`] the elastic controller runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AllocKind {
    /// The PR-1 `util + β·√util` rule ([`zygos_sched::UtilizationPolicy`]).
    Utilization,
    /// The SLO-margin controller ([`zygos_sched::SloController`]) — the
    /// default. Without a configured [`SysConfig::slo`] it receives no
    /// latency signal and degrades to exactly the utilization rule, so the
    /// default is safe for SLO-less experiments.
    #[default]
    SloDriven,
}

pub use zygos_load::slo::CREDIT_HEADROOM;

/// Where the credit gate sheds a request that finds no credit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionMode {
    /// At the server edge: the request travels the wire, is rejected on
    /// arrival, and the explicit reject travels back — a full RTT burned
    /// per shed request (what PR 2 shipped).
    #[default]
    ServerEdge,
    /// At the client: credits are distributed to senders (Breakwater's
    /// sender-side scheme, piggybacked on response headers in the live
    /// runtime's wire format), so a creditless request is never *sent* —
    /// the shed costs zero wire RTT. The simulator models the converged
    /// state of that distribution: the client consults the shared pool
    /// before issuing the request.
    ClientSide,
}

/// Control-plane knobs for [`SystemKind::Elastic`]: the controller's tick
/// period plus the allocator's shared decision-rule tuning (see
/// [`zygos_sched::AllocatorTuning`] for each knob's meaning).
#[derive(Clone, Copy, Debug)]
pub struct ElasticKnobs {
    /// Controller tick period in microseconds.
    pub control_period_us: f64,
    /// Allocator decision-rule knobs.
    pub tuning: zygos_sched::AllocatorTuning,
    /// Which allocation policy staffs the data plane.
    pub alloc: AllocKind,
}

impl Default for ElasticKnobs {
    fn default() -> Self {
        ElasticKnobs {
            control_period_us: 25.0,
            tuning: zygos_sched::AllocatorTuning::default(),
            alloc: AllocKind::default(),
        }
    }
}

/// Full configuration of one system-simulation run.
#[derive(Clone, Debug)]
pub struct SysConfig {
    /// System model under test.
    pub system: SystemKind,
    /// Number of server cores (paper: 16 hyperthreads).
    pub cores: usize,
    /// Number of client connections (paper: 2752).
    pub conns: u32,
    /// Offered load as a fraction of ideal saturation
    /// (`λ = load · cores / S̄`).
    pub load: f64,
    /// Shape of the arrival process ([`ArrivalSpec::Poisson`] is the
    /// paper's constant-rate process; phases and trace replay modulate
    /// the instantaneous rate while preserving the long-run mean, so
    /// [`SysConfig::load`] keeps meaning "fraction of ideal saturation").
    pub arrivals: ArrivalSpec,
    /// Application service-time distribution.
    pub service: ServiceDist,
    /// Per-operation cost model.
    pub cost: CostModel,
    /// Receive batch bound `B` (IX adaptive bounded batching; ZygOS RX
    /// path). `1` disables batching.
    pub rx_batch: u64,
    /// Completions to measure after warmup.
    pub requests: u64,
    /// Completions to discard first.
    pub warmup: u64,
    /// RNG seed.
    pub seed: u64,
    /// Randomize the victim order of steal sweeps (§5; `false` scans
    /// victims in core order — an ablation knob, see
    /// `ablation_steal_ipi`).
    pub randomize_steal_order: bool,
    /// Preemptive time-slice for application execution in the ZygOS-family
    /// models, in microseconds; `0.0` (the paper's behaviour) runs every
    /// request to completion. At quantum expiry the simulator interrupts
    /// the in-flight chunk (reusing the IPI/epoch machinery), charges the
    /// IPI-handler cost, and moves the remainder to a low-priority
    /// background queue that runs only in idle gaps (approximate SJF;
    /// aging promotes entries after ~20 quanta so sustained overload
    /// cannot starve them).
    pub preemption_quantum_us: f64,
    /// Ordering of the background (preempted) queue — FCFS-with-aging or
    /// SRPT on the remaining-time stamps a preempted request carries.
    pub background_order: BackgroundOrder,
    /// Controller knobs; consulted only by [`SystemKind::Elastic`].
    pub elastic: ElasticKnobs,
    /// Credit-based admission control (Breakwater-style) in the
    /// ZygOS-family models: arrivals without a credit are shed before any
    /// processing, and an AIMD controller resizes the pool from the
    /// measured window tail latency ([`CreditConfig::target`] is in µs
    /// here). With [`SysConfig::slo`] also set, the AIMD target is derived
    /// *per tenant class* from the SLO bounds
    /// ([`zygos_load::slo::TenantSlos::aimd_targets_us`] at
    /// [`crate::CREDIT_HEADROOM`]) and shedding is weighted-fair: the
    /// loosest class is capped at the smallest share of the pool and sheds
    /// first. `None` admits everything — the paper's behaviour.
    pub admission: Option<CreditConfig>,
    /// Whether the credit gate sheds at the server edge (burning an RTT
    /// per reject) or at the client (creditless requests are never sent).
    /// Ignored unless [`SysConfig::admission`] is set.
    pub admission_mode: AdmissionMode,
    /// Closed-loop retry feedback in the ZygOS-family models: a shed
    /// request (client-side credit refusal or server-edge reject) and a
    /// timed-out request ([`SysConfig::retry_timeout_us`]) re-enter the
    /// arrival stream through this policy instead of vanishing — the
    /// adversarial-client behaviour that turns overload into retry storms
    /// and, unchecked, into metastable failure. `None` (the default)
    /// keeps the pure open-loop world: sheds are final, and every other
    /// output is bit-identical to the pre-retry engine.
    pub retry: Option<RetryPolicy>,
    /// Apply deterministic per-connection jitter to
    /// [`RetryPolicy::Backoff`] delays
    /// ([`RetryPolicy::on_shed_jittered`]). Ignored without
    /// [`SysConfig::retry`].
    pub retry_jitter: bool,
    /// Client request timeout in microseconds: a request not completed
    /// within this budget is abandoned by the client and fed to the
    /// retry policy (the server still finishes the stale work — that
    /// wasted service is exactly the metastable-failure fuel). `None`
    /// disables timeouts; requires [`SysConfig::retry`] to have any
    /// effect.
    pub retry_timeout_us: Option<f64>,
    /// Per-tenant SLO classes (connection → class round-robin). Feeds the
    /// worst p99-vs-bound ratio to the [`AllocKind::SloDriven`] controller
    /// and, with [`SysConfig::admission`], the per-class credit targets
    /// and weighted-fair shed order.
    pub slo: Option<TenantSlos>,
    /// Staged-pipeline description (stage table + core layout); consulted
    /// only by [`SystemKind::Staged`]. `None` on a staged run falls back
    /// to [`StagedConfig::paper_pipeline`]; every other system kind
    /// ignores it (and keeps it `None`, which is what the degenerate
    /// staged host's bit-identity to plain ZygOS rides on).
    pub staged: Option<StagedConfig>,
    /// Telemetry plane: lifecycle tracing and control-tick time-series
    /// (see `zygos_telemetry::TelemetryConfig`). `None` — the default —
    /// compiles the whole plane down to one untaken branch per lifecycle
    /// point, keeping the hot loop inside its bench gate. Tracing only
    /// *records*: it never touches an RNG or reorders an event, so every
    /// other [`SysOutput`] field is bit-identical traced or not.
    pub telemetry: Option<TelemetryConfig>,
}

impl SysConfig {
    /// A 16-core, 2752-connection configuration matching the paper's
    /// testbed, with defaults suitable for figure regeneration.
    pub fn paper(system: SystemKind, service: ServiceDist, load: f64) -> Self {
        let cost = match system {
            SystemKind::Zygos
            | SystemKind::ZygosNoInterrupts
            | SystemKind::Elastic { .. }
            | SystemKind::Staged => CostModel::zygos(),
            SystemKind::Ix => CostModel::ix(),
            SystemKind::LinuxPartitioned | SystemKind::LinuxFloating => CostModel::linux(),
        };
        let rx_batch = match system {
            // IX is evaluated with batching disabled unless stated (§3.3).
            SystemKind::Ix => 1,
            // ZygOS batches adaptively on the RX path only (§6.2); the
            // staged plane batches at the pipeline head the same way.
            SystemKind::Zygos
            | SystemKind::ZygosNoInterrupts
            | SystemKind::Elastic { .. }
            | SystemKind::Staged => 64,
            _ => 1,
        };
        let staged = match system {
            SystemKind::Staged => Some(StagedConfig::paper_pipeline(&cost)),
            _ => None,
        };
        SysConfig {
            system,
            cores: 16,
            conns: 2752,
            load,
            arrivals: ArrivalSpec::Poisson,
            service,
            cost,
            rx_batch,
            requests: 60_000,
            warmup: 10_000,
            seed: 0x5A47,
            randomize_steal_order: true,
            preemption_quantum_us: 0.0,
            background_order: BackgroundOrder::Fcfs,
            elastic: ElasticKnobs::default(),
            admission: None,
            admission_mode: AdmissionMode::default(),
            retry: None,
            retry_jitter: true,
            retry_timeout_us: None,
            slo: None,
            staged,
            telemetry: None,
        }
    }

    /// Arrival rate in requests per microsecond.
    pub fn lambda_per_us(&self) -> f64 {
        self.load * self.cores as f64 / self.service.mean_us()
    }
}

/// Measured output of a system-simulation run.
#[derive(Clone)]
pub struct SysOutput {
    /// End-to-end (client-observed) latency histogram.
    pub latency: LatencyHistogram,
    /// Completions measured (excludes warmup).
    pub completed: u64,
    /// Requests generated by the arrival source over the whole run
    /// (including warmup and shed requests). With
    /// [`SysOutput::completed_total`] and [`SysOutput::rejected`] this
    /// closes the conservation identity a cold run obeys at drain:
    /// `generated + retries == completed_total + rejected + in_flight`,
    /// with `in_flight >= 0` the requests still queued, in service, or
    /// waiting out a backoff delay when the completion target stopped
    /// the engine ([`SysOutput::retries`] is zero without a retry
    /// policy, recovering the pre-retry identity). (Warm-started
    /// segments inherit a source mid-stream, so the identity is
    /// per-chain there, not per-segment.)
    pub generated: u64,
    /// Completions over the whole run, warmup included (the measured
    /// window is [`SysOutput::completed`]).
    pub completed_total: u64,
    /// Discrete events the engine processed over the whole run (including
    /// warmup) — the numerator of the experiment plane's events/sec, what
    /// `lab bench` tracks across PRs.
    pub events: u64,
    /// Simulated duration in microseconds (measurement window).
    pub sim_time_us: f64,
    /// Events executed on their home core.
    pub local_events: u64,
    /// Events executed on a stealing core.
    pub stolen_events: u64,
    /// IPIs delivered.
    pub ipis: u64,
    /// Quantum-expiry preemptions (0 unless `preemption_quantum_us` > 0).
    pub preemptions: u64,
    /// Time-averaged granted cores over the run. Equals the configured core
    /// count for statically provisioned systems; below it when
    /// [`SystemKind::Elastic`] parks cores.
    pub avg_active_cores: f64,
    /// Requests admitted past the credit gate (0 when admission is off).
    pub admitted: u64,
    /// Requests shed by the credit gate (0 when admission is off).
    pub rejected: u64,
    /// Shed requests that burned wire RTT (travelled to the server and
    /// were rejected there). Every reject under
    /// [`AdmissionMode::ServerEdge`]; zero under
    /// [`AdmissionMode::ClientSide`], where creditless requests are never
    /// sent.
    pub wire_rejects: u64,
    /// Round-trip wire latency (µs) charged per wire-travelling reject.
    pub rtt_us: f64,
    /// Retry re-issues the closed feedback loop put back into the
    /// arrival stream (0 without [`SysConfig::retry`]) — each one is an
    /// extra offered request the open-loop source never emitted, so
    /// `(generated + retries) / generated` is the retry amplification
    /// the clients inflicted on themselves.
    pub retries: u64,
    /// Logical requests the retry policy permanently abandoned after at
    /// least one shed or timeout (0 without [`SysConfig::retry`]).
    pub give_ups: u64,
    /// Client-side timeout expiries that fed the retry policy (0 unless
    /// [`SysConfig::retry_timeout_us`] is armed).
    pub timeouts: u64,
    /// Requests shed per tenant SLO class (one slot per class; a single
    /// slot when no [`SysConfig::slo`] is configured).
    pub rejected_by_class: Vec<u64>,
    /// Requests admitted per tenant SLO class (same shape as
    /// [`SysOutput::rejected_by_class`]). With round-robin class
    /// assignment every class is offered near-equal load, so
    /// `admitted_c / (admitted_c + rejected_c)` is the class's admit
    /// rate — what the per-class occupancy rule guarantees a floor for.
    pub admitted_by_class: Vec<u64>,
    /// Items that finished each pipeline stage's processing, in stage
    /// order — the staged plane's conservation ledger (non-increasing
    /// along the pipeline; the final entry equals
    /// [`SysOutput::completed_total`]). Empty on every non-staged run and
    /// on the degenerate staged run delegated to the ZygOS model.
    pub stage_counts: Vec<u64>,
    /// p99 queue wait (µs) ahead of each pipeline stage over the
    /// measurement window — the staged plane's tail-decomposition
    /// buckets. `0` for stages that run back-to-back inside a segment
    /// (they have no queue); empty on non-staged runs.
    pub stage_p99_wait_us: Vec<f64>,
    /// Telemetry harvest: the merged lifecycle event stream and the
    /// control-tick time-series. `None` unless [`SysConfig::telemetry`]
    /// armed the plane (the IX/Linux models do not trace yet and always
    /// report `None`).
    pub telemetry: Option<TelemetryOut>,
}

impl SysOutput {
    /// 99th-percentile end-to-end latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.latency.p99_us()
    }

    /// Measured throughput in requests per microsecond (≈ MRPS).
    pub fn throughput_mrps(&self) -> f64 {
        if self.sim_time_us == 0.0 {
            0.0
        } else {
            self.completed as f64 / self.sim_time_us
        }
    }

    /// Figure 8's metric: fraction of events executed by a non-home core.
    pub fn steal_fraction(&self) -> f64 {
        let total = self.local_events + self.stolen_events;
        if total == 0 {
            0.0
        } else {
            self.stolen_events as f64 / total as f64
        }
    }

    /// Core-seconds consumed over the measurement window — the elastic
    /// controller's cost metric (granted cores × wall time, whether busy
    /// or polling: a granted core burns its CPU either way).
    pub fn core_seconds_used(&self) -> f64 {
        self.avg_active_cores * self.sim_time_us / 1_000_000.0
    }

    /// Fraction of arrivals shed by the credit gate (0 with admission
    /// off). The complement of the paper's "goodput" view: admitted
    /// requests keep a bounded tail; this is what the surplus paid.
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.admitted + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }

    /// Total wire time (µs) burned by shed requests: requests that
    /// travelled to the server only to be rejected, plus their reject
    /// replies. The cost client-side credit distribution exists to
    /// eliminate — creditless requests are dropped (or retried later) at
    /// the sender for free.
    pub fn wasted_wire_us(&self) -> f64 {
        self.wire_rejects as f64 * self.rtt_us
    }

    /// The fraction of **all sheds** that fell on one tenant class:
    /// `rejected_c / Σ rejected`. With round-robin class assignment every
    /// class is offered (near-)equal load, so this share is the direct
    /// reading of the weighted-fair claim: "the loosest class sheds
    /// first" means its share approaches 1. Note it is *not* a per-class
    /// shed rate (`rejected_c / offered_c`) — per-class admitted counts
    /// are not tracked.
    pub fn shed_share_of_class(&self, class: usize) -> f64 {
        let total: u64 = self.rejected_by_class.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.rejected_by_class[class] as f64 / total as f64
        }
    }

    /// The fraction of one class's **own offered load** that was shed:
    /// `rejected_c / (admitted_c + rejected_c)`. Unlike
    /// [`SysOutput::shed_share_of_class`] this is a per-class rate, so it
    /// can certify a floor ("the batch class still admits ≥ x% of its
    /// arrivals under strict-tenant saturation").
    pub fn shed_rate_of_class(&self, class: usize) -> f64 {
        let offered = self.admitted_by_class[class] + self.rejected_by_class[class];
        if offered == 0 {
            0.0
        } else {
            self.rejected_by_class[class] as f64 / offered as f64
        }
    }

    /// How many offered requests each generated request turned into:
    /// `(generated + retries) / generated`. 1.0 with retries off; the
    /// divergence signal of a retry storm — naive immediate retry under
    /// sustained overload pushes it toward `1 + max_attempts`.
    pub fn retry_amplification(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            (self.generated + self.retries) as f64 / self.generated as f64
        }
    }

    /// Fraction of generated (logical) requests the client did *not*
    /// abandon: `1 - give_ups / generated`. The retry plane's goodput
    /// reading — with retries off nothing is ever given up and this is
    /// 1.0, even though the gate may still be shedding (those sheds are
    /// final but counted in [`SysOutput::shed_fraction`]).
    pub fn goodput_fraction(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            1.0 - self.give_ups as f64 / self.generated as f64
        }
    }

    /// Retry re-issues per generated request — the per-request feedback
    /// rate (`retry_amplification() - 1`).
    pub fn retry_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.retries as f64 / self.generated as f64
        }
    }

    /// Permanent client abandons per generated request
    /// (`1 - goodput_fraction()`).
    pub fn give_up_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.give_ups as f64 / self.generated as f64
        }
    }

    /// Preemptions per measured request.
    pub fn preemptions_per_req(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.preemptions as f64 / self.completed as f64
        }
    }
}
