//! Fleet harness: N independent `sysim` shards behind a simulated L4
//! balancer.
//!
//! The paper bounds tail latency *inside* one server by keeping the
//! queue→core indirection work-conserving; this module lifts the same
//! indirection one level, to request→server across a sharded fleet. The
//! balancer ([`zygos_load::route::Balancer`]) pins *connections* to
//! shards — the way a real L4 tier pins flows — so by Poisson thinning
//! each shard's arrival substream is exactly Poisson at its connection
//! share of the fleet rate. Between routing decisions the shards share
//! nothing, which buys three things at once:
//!
//! 1. **Fidelity** — every shard is a full, unmodified ZygOS-family
//!    world with its own policy-plane instance (work stealing, IPIs,
//!    credit admission, elastic control), not a fluid approximation.
//! 2. **Scale** — shards fan out over scoped threads with
//!    shard-index-ordered reassembly, so a 16-shard fleet at 10⁷–10⁸
//!    aggregate users costs one shard's wall-clock per core.
//! 3. **Trust** — with one shard and [`RoutePolicy::PassThrough`]
//!    routing, the fleet layer lowers to the base [`SysConfig`]
//!    *verbatim*: the aggregation is pinned bit-identical to
//!    [`crate::run_system`] by a differential test, the fleet analogue
//!    of the WheelQueue/HeapQueue engine oracle.
//!
//! **Scatter-gather** lifts the tail one more level: with
//! [`FleetConfig::fanout`] `M > 1` every user request fans out to `M`
//! distinct shards (its connection's replica set, chosen by
//! [`zygos_load::route::Balancer::route_multi`]) and completes when the
//! *slowest* sub-request does. The shards stay independent worlds — each
//! runs its Poisson substream of sub-requests exactly as before — and the
//! max-of-M completion is applied at aggregation: for iid sub-request
//! latencies `P(max ≤ x) = F(x)^M`, so the user p99 is the merged
//! histogram's `0.99^(1/M)` quantile and user throughput is sub-request
//! throughput over `M`. That one TOML key reproduces tail-at-scale
//! amplification (Dean & Barroso): a per-shard p99 hiccup that touches 1%
//! of sub-requests touches `1-0.99^M` of fanned user requests.
//!
//! Two fault injections come from the scenario spec:
//!
//! * **Degradation** — shard `i` serves at `f×` its healthy cost
//!   ([`zygos_sim::dist::ServiceDist::scaled`]); its arrival rate is
//!   unchanged (clients
//!   don't know), so its *effective* load multiplies by `f`. Load-aware
//!   routing sees capacity `1/f` and assigns the shard proportionally
//!   fewer connections; consistent-hash does not — the `fleet_tail`
//!   scenario's claim.
//! * **Loss** — shard `l` disappears at `t_loss`: its connections remap
//!   onto survivors (only *its* keys move under consistent hashing), and
//!   each survivor's arrival process becomes piecewise-Poisson — its
//!   pre-loss rate for `t_loss`, then its post-remap rate — via
//!   [`ArrivalSpec::Phased`]. The lost shard runs its pre-loss
//!   configuration with a completion target sized to drain before
//!   `t_loss`.
//!
//! Request conservation is observable end to end: every shard reports
//! `generated`, `completed_total` and `rejected`, and
//! [`FleetOutput::in_flight`] closes the identity
//! `generated == completed_total + rejected + in_flight` at drain — a
//! fleet-wide property test pins it for arbitrary shard counts and
//! seeds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use zygos_load::route::{conn_key, Balancer, RoutePolicy};
use zygos_load::source::{ArrivalSpec, Phase};
use zygos_sim::stats::LatencyHistogram;
use zygos_telemetry::TelemetryOut;

use crate::config::{SysConfig, SysOutput};
use crate::driver::run_system;

/// Seed stride between shards: shard `i` runs at
/// `base.seed + i · FLEET_SEED_STRIDE` (shard 0 keeps the base seed, so
/// the single-shard fleet is seed-identical to the base world).
pub const FLEET_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Where the credit-admission budget lives in a fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionTopology {
    /// Each shard runs the base pool as its own (the default: admission
    /// provisioned where the queues are).
    PerShard,
    /// The base pool is one fleet-wide budget, split evenly across the
    /// shards ([`zygos_sched::CreditConfig::split`]). Observable because
    /// pool sizing is not linear in cores: a split fleet budget starts
    /// tighter and probes more gently than shard-local provisioning.
    FleetWide,
}

/// A fleet experiment: `shards` copies of `base` behind a balancer.
///
/// `base` is read as the *fleet-level* description: `base.conns` is the
/// fleet's connection count (partitioned by routing), `base.load` the
/// offered load as a fraction of fleet-wide ideal saturation
/// (`shards × cores` healthy cores), and `base.requests`/`base.warmup`
/// fleet-total completion windows (divided by connection share).
/// `base.cores` is per shard.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Per-shard world template and fleet-level workload knobs.
    pub base: SysConfig,
    /// Number of server shards.
    pub shards: usize,
    /// Connection-routing policy at the balancer.
    pub routing: RoutePolicy,
    /// Credit-admission topology (ignored when `base.admission` is off).
    pub admission: AdmissionTopology,
    /// Degraded shards as `(shard, service factor)`: shard `i` serves at
    /// `factor ×` its healthy cost.
    pub degraded: Vec<(usize, f64)>,
    /// Shard loss as `(shard, at_us)`: the shard disappears at `at_us`
    /// and its connections remap onto the survivors. Requires Poisson
    /// base arrivals (survivor rewiring is expressed as phases).
    pub loss: Option<(usize, f64)>,
    /// Scatter-gather fan-out: every user request becomes `fanout`
    /// sub-requests on distinct shards and completes at the slowest
    /// (1 = plain routing, the default). `base.load` keeps its
    /// sub-request meaning — it is the *sub-request* fraction of fleet
    /// saturation — so the same load compares fairly across fan-outs;
    /// user-facing throughput and p99 are fan-out-adjusted at
    /// aggregation ([`FleetOutput::throughput_mrps`],
    /// [`FleetOutput::p99_us`]). Incompatible with shard loss: a lost
    /// shard would strand every replica set that includes it.
    pub fanout: usize,
}

impl FleetConfig {
    /// A healthy fleet of `shards` copies of `base` under `routing`.
    pub fn new(base: SysConfig, shards: usize, routing: RoutePolicy) -> Self {
        FleetConfig {
            base,
            shards,
            routing,
            admission: AdmissionTopology::PerShard,
            degraded: Vec::new(),
            loss: None,
            fanout: 1,
        }
    }

    /// Service-cost factor of `shard` (1.0 unless degraded).
    fn factor(&self, shard: usize) -> f64 {
        self.degraded
            .iter()
            .find(|&&(s, _)| s == shard)
            .map_or(1.0, |&(_, f)| f)
    }

    /// Fleet-wide offered arrival rate in requests/µs: `load` of the
    /// healthy fleet's ideal saturation.
    fn fleet_rate_per_us(&self) -> f64 {
        self.base.load * (self.shards * self.base.cores) as f64 / self.base.service.mean_us()
    }
}

/// One shard's lowered world, or `None` for a shard that has nothing to
/// run (no connections, or lost before it could complete anything).
type ShardPlan = Option<SysConfig>;

/// The deterministic lowering of a [`FleetConfig`]: per-shard configs
/// plus the balancer's connection ledger.
struct FleetPlan {
    configs: Vec<ShardPlan>,
    /// Connections assigned per shard (pre-loss).
    assigned: Vec<u32>,
    /// Connections remapped by the loss event (0 without one).
    moved: u64,
}

/// Aggregated result of a fleet run: the per-shard worlds' outputs in
/// shard order, plus fleet-level reductions.
#[derive(Clone)]
pub struct FleetOutput {
    /// Per-shard outputs, indexed by shard (idle shards report zeros).
    pub shards: Vec<SysOutput>,
    /// Connections assigned per shard at t=0 (replica-set slots when
    /// `fanout > 1`: each connection counts once per replica).
    pub assigned: Vec<u32>,
    /// Connections remapped by the loss event (0 without one).
    pub moved: u64,
    /// Scatter-gather fan-out the fleet ran with (1 = plain routing).
    pub fanout: usize,
    /// Merged measured-window latency histogram across all shards.
    /// Sub-request latencies when `fanout > 1`; [`Self::p99_us`] applies
    /// the max-of-M adjustment.
    pub latency: LatencyHistogram,
    /// Merged per-shard time-series, names prefixed `shard<i>/`.
    /// `None` unless the base config armed telemetry. Lifecycle traces
    /// are not merged: their correlation keys are per-world sequence
    /// numbers, which collide across shards.
    pub telemetry: Option<TelemetryOut>,
}

impl FleetOutput {
    /// Requests generated across the fleet (warmup and sheds included).
    pub fn generated(&self) -> u64 {
        self.shards.iter().map(|s| s.generated).sum()
    }

    /// Completions across the fleet, warmup included.
    pub fn completed_total(&self) -> u64 {
        self.shards.iter().map(|s| s.completed_total).sum()
    }

    /// Measured completions across the fleet (warmup excluded).
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Requests shed by credit gates across the fleet.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Requests admitted past credit gates across the fleet.
    pub fn admitted(&self) -> u64 {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Retry re-issues across the fleet (closed-loop feedback volume).
    pub fn retries(&self) -> u64 {
        self.shards.iter().map(|s| s.retries).sum()
    }

    /// Requests abandoned by their retry policy across the fleet.
    pub fn give_ups(&self) -> u64 {
        self.shards.iter().map(|s| s.give_ups).sum()
    }

    /// Client timeouts fired across the fleet.
    pub fn timeouts(&self) -> u64 {
        self.shards.iter().map(|s| s.timeouts).sum()
    }

    /// Engine events processed across the fleet — the `lab bench`
    /// numerator for the fleet workload.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Requests generated but neither completed nor shed when the
    /// completion targets stopped the shard engines: still queued, in
    /// service, or on the wire. Closes the retry-extended conservation
    /// identity
    /// `generated + retries == completed_total + rejected + in_flight`
    /// (with retries off it collapses to the original); never negative
    /// for cold runs (the fleet always runs cold).
    pub fn in_flight(&self) -> i64 {
        self.generated() as i64 + self.retries() as i64
            - self.completed_total() as i64
            - self.rejected() as i64
    }

    /// Aggregate fleet throughput in requests/µs of *user* requests: the
    /// sum of per-shard measured sub-request rates, over the fan-out (a
    /// fanned user request only completes when all its sub-requests do).
    pub fn throughput_mrps(&self) -> f64 {
        let sub: f64 = self.shards.iter().map(|s| s.throughput_mrps()).sum();
        sub / self.fanout as f64
    }

    /// Fleet 99th-percentile *user* latency. With `fanout == 1` this is
    /// the merged histogram's p99 verbatim (bit-identical to the base
    /// world in the single-shard differential). With `fanout = M` a user
    /// request completes at the max of `M` iid sub-requests, so
    /// `P(max ≤ x) = F(x)^M` and the user p99 is the sub-request
    /// distribution's `0.99^(1/M)` quantile — for `M = 4` that is the
    /// sub-request p99.75, the tail-at-scale amplification in one line.
    pub fn p99_us(&self) -> f64 {
        if self.fanout == 1 {
            self.latency.p99_us()
        } else {
            self.latency
                .quantile_us(0.99f64.powf(1.0 / self.fanout as f64))
        }
    }
}

/// Lowers a [`FleetConfig`] to per-shard worlds.
///
/// # Panics
///
/// Panics on structural misuse: zero shards, out-of-range degradation or
/// loss indices, non-positive factors, a loss with non-Poisson base
/// arrivals, or a single-shard loss (nothing would remain).
fn plan_fleet(cfg: &FleetConfig) -> FleetPlan {
    assert!(cfg.shards >= 1, "a fleet needs at least one shard");
    assert!(cfg.base.conns >= 1, "a fleet needs connections to route");
    for &(s, f) in &cfg.degraded {
        assert!(s < cfg.shards, "degraded shard {s} out of range");
        assert!(
            f.is_finite() && f > 0.0,
            "degradation factor must be positive"
        );
    }
    assert!(cfg.fanout >= 1, "fan-out must be at least 1");
    assert!(
        cfg.fanout <= cfg.shards,
        "fan-out {} exceeds {} shards (replica sets are distinct)",
        cfg.fanout,
        cfg.shards
    );
    assert!(
        cfg.fanout == 1 || cfg.loss.is_none(),
        "scatter-gather is incompatible with shard loss: a lost shard \
         strands every replica set that includes it"
    );
    if let Some((l, at)) = cfg.loss {
        assert!(l < cfg.shards, "lost shard {l} out of range");
        assert!(cfg.shards >= 2, "losing the only shard ends the fleet");
        assert!(at.is_finite() && at > 0.0, "loss time must be positive");
        assert!(
            matches!(cfg.base.arrivals, ArrivalSpec::Poisson),
            "shard loss rewires survivor arrivals as phases and needs \
             Poisson base arrivals"
        );
    }

    // The differential wire: one shard, nothing injected — the base
    // world verbatim, so aggregation is the only fleet code in the loop.
    if cfg.shards == 1 && cfg.degraded.is_empty() && cfg.loss.is_none() {
        return FleetPlan {
            configs: vec![Some(cfg.base.clone())],
            assigned: vec![cfg.base.conns],
            moved: 0,
        };
    }

    let conns = cfg.base.conns as usize;
    let mut bal = Balancer::new(cfg.routing, cfg.shards, cfg.base.seed);
    for &(s, f) in &cfg.degraded {
        bal.set_capacity(s, 1.0 / f);
    }
    // With fan-out M each connection claims a replica *set* of M distinct
    // shards; `pre` counts substream slots per shard (M slots per
    // connection, one with plain routing), and every shard's arrival
    // share is its slot share of `conns × M` total slots.
    let slots = conns * cfg.fanout;
    let mut map = Vec::new();
    let mut pre = vec![0u32; cfg.shards];
    if cfg.fanout == 1 {
        map = bal.assign(conns);
        for &s in &map {
            pre[s as usize] += 1;
        }
    } else {
        for c in 0..conns {
            for s in bal.route_multi(conn_key(cfg.base.seed, c), cfg.fanout) {
                pre[s] += 1;
            }
        }
    }
    let (post, moved) = match cfg.loss {
        Some((l, _)) => {
            let moved = bal.lose_shard(l, &mut map) as u64;
            let mut post = vec![0u32; cfg.shards];
            for &s in &map {
                post[s as usize] += 1;
            }
            (post, moved)
        }
        None => (pre.clone(), 0),
    };

    let fleet_rate = cfg.fleet_rate_per_us();
    let mean_us = cfg.base.service.mean_us();
    let configs = (0..cfg.shards)
        .map(|i| {
            let factor = cfg.factor(i);
            let lost_here = cfg.loss.map(|(l, _)| l == i).unwrap_or(false);
            let (n_pre, n_post) = (pre[i] as f64, post[i] as f64);
            if pre[i] == 0 {
                return None; // Never offered traffic: nothing to run.
            }
            let mut shard = cfg.base.clone();
            shard.seed = cfg
                .base
                .seed
                .wrapping_add((i as u64).wrapping_mul(FLEET_SEED_STRIDE));
            shard.service = cfg.base.service.scaled(factor);
            if let (AdmissionTopology::FleetWide, Some(pool)) = (cfg.admission, cfg.base.admission)
            {
                shard.admission = Some(pool.split(cfg.shards));
            }
            if let Some(t) = &mut shard.telemetry {
                // Series only: lifecycle correlation keys collide across
                // shards, so fleet worlds never trace.
                t.trace = false;
                if t.is_off() {
                    shard.telemetry = None;
                }
            }
            let share_pre = n_pre / slots as f64;
            // `load` is calibrated so the shard's arrival rate is its
            // connection share of the fleet rate *at its scaled service
            // cost*: λ_i = load_i · cores / (mean · f) must equal
            // share · λ_fleet, hence the `factor` term — degradation
            // slows serving, never arrivals.
            let load_for = |rate: f64| rate * mean_us * factor / cfg.base.cores as f64;
            match cfg.loss {
                Some((_, at_us)) if lost_here => {
                    shard.conns = pre[i];
                    shard.load = load_for(share_pre * fleet_rate);
                    // Drain before the loss: target the completions the
                    // shard can plausibly reach by t_loss at its offered
                    // rate, halved for shedding/queueing headroom.
                    let cap = (share_pre * fleet_rate * at_us * 0.5) as u64;
                    if cap < 2 {
                        return None; // Lost too early to measure anything.
                    }
                    let warm = ((cfg.base.warmup as f64 * share_pre).round() as u64).min(cap / 2);
                    shard.warmup = warm;
                    shard.requests = (cap - warm).max(1);
                    Some(shard)
                }
                Some((_, at_us)) => {
                    // Survivor: pre-loss rate for t_loss, post-remap rate
                    // after. Factors are exact — the load knob carries the
                    // phase-weighted mean rate, so normalization cancels.
                    let r_pre = share_pre * fleet_rate;
                    let r_post = (n_post / conns as f64) * fleet_rate;
                    shard.conns = post[i];
                    let share_post = n_post / conns as f64;
                    shard.requests =
                        ((cfg.base.requests as f64 * share_post).round() as u64).max(1);
                    shard.warmup = (cfg.base.warmup as f64 * share_post).round() as u64;
                    if r_post != r_pre {
                        // Horizon: generously past the longest plausible
                        // run so the phase cycle never wraps.
                        let est_us = (shard.requests + shard.warmup) as f64 / r_pre.min(r_post);
                        let horizon = 8.0 * est_us + at_us;
                        let m = (r_pre * at_us + r_post * horizon) / (at_us + horizon);
                        shard.load = load_for(m);
                        shard.arrivals = ArrivalSpec::Phased(vec![
                            Phase {
                                duration_us: at_us,
                                rate_factor: r_pre / m,
                            },
                            Phase {
                                duration_us: horizon,
                                rate_factor: r_post / m,
                            },
                        ]);
                    } else {
                        shard.load = load_for(r_pre);
                    }
                    Some(shard)
                }
                None => {
                    shard.conns = pre[i];
                    shard.load = load_for(share_pre * fleet_rate);
                    // Completion windows are user-request counts at the
                    // fleet level; each user request is `fanout`
                    // sub-requests, split by slot share.
                    let sub_share = cfg.fanout as f64 * share_pre;
                    shard.requests = ((cfg.base.requests as f64 * sub_share).round() as u64).max(1);
                    shard.warmup = (cfg.base.warmup as f64 * sub_share).round() as u64;
                    Some(shard)
                }
            }
        })
        .collect();

    FleetPlan {
        configs,
        assigned: pre,
        moved,
    }
}

/// A zeroed output for a shard that had nothing to run, shaped like the
/// real ones (class vectors sized from the base SLO config) so fleet
/// reductions never special-case it.
fn idle_output(base: &SysConfig) -> SysOutput {
    let classes = base.slo.as_ref().map_or(1, |t| t.classes().len());
    SysOutput {
        latency: LatencyHistogram::new(),
        completed: 0,
        generated: 0,
        completed_total: 0,
        events: 0,
        sim_time_us: 0.0,
        local_events: 0,
        stolen_events: 0,
        ipis: 0,
        preemptions: 0,
        avg_active_cores: 0.0,
        admitted: 0,
        rejected: 0,
        wire_rejects: 0,
        retries: 0,
        give_ups: 0,
        timeouts: 0,
        rtt_us: base.cost.network_rtt_ns as f64 / 1_000.0,
        rejected_by_class: vec![0; classes],
        admitted_by_class: vec![0; classes],
        stage_counts: Vec::new(),
        stage_p99_wait_us: Vec::new(),
        telemetry: None,
    }
}

/// Runs a fleet with one worker thread per available core.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutput {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    run_fleet_threads(cfg, threads)
}

/// Runs a fleet on `threads` workers (1 = fully sequential), reassembling
/// shard outputs in shard-index order. The result is bit-identical for
/// any thread count: shards share nothing and each lands in its own slot.
pub fn run_fleet_threads(cfg: &FleetConfig, threads: usize) -> FleetOutput {
    let plan = plan_fleet(cfg);
    let n = plan.configs.len();
    let threads = threads.clamp(1, n.max(1));
    let mut outs: Vec<Option<SysOutput>> = Vec::with_capacity(n);
    if threads == 1 {
        for c in &plan.configs {
            outs.push(c.as_ref().map(run_system));
        }
    } else {
        let slots: Vec<Mutex<Option<SysOutput>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if let Some(c) = &plan.configs[i] {
                        let out = run_system(c);
                        *slots[i].lock().expect("fleet slot poisoned") = Some(out);
                    }
                });
            }
        });
        for slot in slots {
            outs.push(slot.into_inner().expect("fleet slot poisoned"));
        }
    }

    let shards: Vec<SysOutput> = outs
        .into_iter()
        .map(|o| o.unwrap_or_else(|| idle_output(&cfg.base)))
        .collect();
    let mut latency = LatencyHistogram::new();
    for s in &shards {
        latency.merge(&s.latency);
    }
    let telemetry = if cfg.base.telemetry.is_some() {
        let mut merged = TelemetryOut::default();
        for (i, s) in shards.iter().enumerate() {
            if let Some(t) = &s.telemetry {
                let mut t = t.clone();
                t.namespace_series(&format!("shard{i}/"));
                merged.series.extend(t.series);
                merged.dropped += t.dropped;
            }
        }
        Some(merged)
    } else {
        None
    };
    FleetOutput {
        shards,
        assigned: plan.assigned,
        moved: plan.moved,
        fanout: cfg.fanout,
        latency,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use zygos_sim::dist::ServiceDist;

    fn small_base(load: f64) -> SysConfig {
        let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), load);
        cfg.cores = 4;
        cfg.conns = 64;
        cfg.requests = 2_000;
        cfg.warmup = 400;
        cfg.seed = 0xF1EE7;
        cfg
    }

    #[test]
    fn single_shard_pass_through_is_the_base_world() {
        let base = small_base(0.6);
        let fleet = FleetConfig::new(base.clone(), 1, RoutePolicy::PassThrough);
        let f = run_fleet_threads(&fleet, 1);
        let s = run_system(&base);
        assert_eq!(f.shards.len(), 1);
        assert_eq!(f.shards[0].completed, s.completed);
        assert_eq!(f.shards[0].events, s.events);
        assert_eq!(f.p99_us().to_bits(), s.p99_us().to_bits());
        assert_eq!(f.throughput_mrps().to_bits(), s.throughput_mrps().to_bits());
    }

    #[test]
    fn parallel_and_sequential_fleets_agree_bitwise() {
        let mut fleet = FleetConfig::new(small_base(0.7), 4, RoutePolicy::ConsistentHash);
        fleet.degraded = vec![(1, 2.0)];
        let a = run_fleet_threads(&fleet, 1);
        let b = run_fleet_threads(&fleet, 4);
        assert_eq!(a.generated(), b.generated());
        assert_eq!(a.completed_total(), b.completed_total());
        assert_eq!(a.p99_us().to_bits(), b.p99_us().to_bits());
        assert_eq!(a.throughput_mrps().to_bits(), b.throughput_mrps().to_bits());
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.events, y.events);
            assert_eq!(x.generated, y.generated);
        }
    }

    #[test]
    fn conservation_holds_at_drain() {
        let mut fleet = FleetConfig::new(small_base(0.8), 3, RoutePolicy::LeastLoaded);
        fleet.base.admission = Some(zygos_sched::CreditConfig::for_cores(4, 60.0));
        let out = run_fleet_threads(&fleet, 2);
        assert_eq!(
            out.generated() as i64,
            out.completed_total() as i64 + out.rejected() as i64 + out.in_flight()
        );
        assert!(out.in_flight() >= 0, "in_flight = {}", out.in_flight());
        let total: u32 = out.assigned.iter().sum();
        assert_eq!(total, fleet.base.conns);
    }

    #[test]
    fn scatter_gather_amplifies_the_tail_with_fanout() {
        // Same sub-request load, same shards, balanced routing (so every
        // shard runs at the same load in both worlds): the only
        // difference is that a user request waits for the max of 4
        // sub-requests instead of 1, so the user p99 must grow.
        let base = small_base(0.6);
        let mut m1 = FleetConfig::new(base.clone(), 8, RoutePolicy::LeastLoaded);
        m1.base.conns = 128;
        let mut m4 = m1.clone();
        m4.fanout = 4;
        let a = run_fleet_threads(&m1, 2);
        let b = run_fleet_threads(&m4, 2);
        assert_eq!(a.fanout, 1);
        assert_eq!(b.fanout, 4);
        assert_eq!(b.assigned.iter().sum::<u32>(), 128 * 4);
        assert!(
            b.p99_us() > a.p99_us(),
            "fan-out 4 p99 {} must exceed fan-out 1 p99 {}",
            b.p99_us(),
            a.p99_us()
        );
        // User throughput is sub-request throughput over M: with the same
        // sub-request load it lands near the fan-out-1 rate over 4.
        let ratio = b.throughput_mrps() / a.throughput_mrps();
        assert!(
            (0.15..0.45).contains(&ratio),
            "user throughput ratio {ratio} should sit near 1/4"
        );
    }

    #[test]
    fn scatter_gather_of_one_changes_nothing() {
        // fanout = 1 must lower through the exact same code path bits as
        // the un-fanned fleet: the knob's default is free.
        let mut fleet = FleetConfig::new(small_base(0.7), 4, RoutePolicy::PowerOfTwoChoices);
        fleet.degraded = vec![(2, 1.5)];
        let a = run_fleet_threads(&fleet, 1);
        fleet.fanout = 1;
        let b = run_fleet_threads(&fleet, 1);
        assert_eq!(a.p99_us().to_bits(), b.p99_us().to_bits());
        assert_eq!(a.throughput_mrps().to_bits(), b.throughput_mrps().to_bits());
        assert_eq!(a.generated(), b.generated());
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn fanout_beyond_the_shard_count_is_rejected() {
        let mut fleet = FleetConfig::new(small_base(0.5), 2, RoutePolicy::ConsistentHash);
        fleet.fanout = 3;
        run_fleet_threads(&fleet, 1);
    }

    #[test]
    #[should_panic(expected = "incompatible with shard loss")]
    fn fanout_with_loss_is_rejected() {
        let mut fleet = FleetConfig::new(small_base(0.5), 4, RoutePolicy::ConsistentHash);
        fleet.fanout = 2;
        fleet.loss = Some((1, 2_000.0));
        run_fleet_threads(&fleet, 1);
    }

    #[test]
    fn retry_conservation_holds_fleet_wide() {
        // Retrying shards under fleet-wide credits: the retry-extended
        // identity must close through the fleet reductions.
        let mut fleet = FleetConfig::new(small_base(1.2), 3, RoutePolicy::LeastLoaded);
        fleet.base.admission = Some(zygos_sched::CreditConfig::for_cores(4, 60.0));
        fleet.admission = AdmissionTopology::FleetWide;
        fleet.base.retry = Some(zygos_load::retry::RetryPolicy::Backoff {
            base_us: 30,
            factor: 2.0,
            max_attempts: 3,
        });
        let out = run_fleet_threads(&fleet, 2);
        assert!(out.retries() > 0, "overload with backoff must retry");
        assert!(out.give_ups() > 0, "capped backoff must abandon some");
        assert_eq!(
            out.generated() as i64 + out.retries() as i64,
            out.completed_total() as i64 + out.rejected() as i64 + out.in_flight()
        );
        assert!(out.in_flight() >= 0, "in_flight = {}", out.in_flight());
    }

    #[test]
    fn shard_loss_shifts_load_to_survivors() {
        let mut fleet = FleetConfig::new(small_base(0.5), 3, RoutePolicy::ConsistentHash);
        fleet.loss = Some((2, 2_000.0));
        let out = run_fleet_threads(&fleet, 2);
        assert!(out.moved > 0, "loss must remap connections");
        assert_eq!(out.assigned.iter().sum::<u32>(), fleet.base.conns);
        // The lost shard drains early: far fewer completions than the
        // survivors.
        assert!(out.shards[2].completed_total < out.shards[0].completed_total);
    }
}
