//! The staged service plane: a request as a multi-phase pipeline
//! (`net_poll → net_stack → app`) with explicit core layouts.
//!
//! Every other model in this crate folds a request's NIC-poll,
//! network-stack and application phases into one opaque cost; the paper's
//! IX-vs-ZygOS argument, though, is really about *where* those phases run
//! (§2, §3 of conf_sosp_PrekasKB17, and Belay et al.'s run-to-completion
//! case). This module makes the phases first-class:
//!
//! * A [`StagedConfig`] names the stages. Every stage carries a fixed
//!   per-item cost (plus an amortizable per-batch cost), and the **final**
//!   stage is always the application stage — it additionally burns the
//!   sampled service time.
//! * A [`CoreLayout`] assigns core roles, mirroring the reference
//!   Layout1–4 idioms in `SNIPPETS.md`:
//!   [`CoreLayout::Unified`] (Layout 2) runs every stage on every core,
//!   run-to-completion over the RX batch — IX's shape.
//!   [`CoreLayout::SplitNet`] (Layouts 3/4) dedicates `net_cores` to the
//!   network stages, feeding the application cores item by item.
//!   [`CoreLayout::SplitFull`] (Layout 1) additionally splits NIC polling
//!   from stack processing — dispatcher cores, stack cores, app cores.
//! * A per-stage [`QueueDiscipline`] picks the queue shape at each stage
//!   boundary: one shared cFCFS queue, per-core dFCFS queues, or dFCFS
//!   with ZygOS-style stealing. The discipline is lowered to the shared
//!   `zygos_sched` dispatch ladder ([`FcfsPolicy`] / [`RtcPolicy`] /
//!   [`ZygosPolicy`]) and every take walks that ladder — the policy plane
//!   stays the single decision authority, here as everywhere else.
//!
//! A layout partitions the pipeline into **segments**: maximal stage runs
//! that execute back-to-back on one core (run-to-completion inside a
//! segment; a queue only at each segment's head stage). `Unified` is one
//! segment spanning the whole pipeline; `SplitNet` is `[net][app]`;
//! `SplitFull` is `[poll][stack][app]`. The head segment grabs up to
//! [`SysConfig::rx_batch`] items per take (the NIC poll is what batching
//! amortizes — and under `Unified` the entire batch then runs to
//! completion, which is exactly the head-of-line blocking the split
//! layouts exist to avoid); downstream segments take one item at a time.
//!
//! **Bit-identity contract** (the PR-8 pattern): the *degenerate* pipeline
//! — a single zero-cost `Unified` stage with steal dispatch, i.e.
//! [`StagedConfig::zygos_equivalent`] — means "no stage decomposition
//! requested" and is delegated verbatim to the ZygOS model, so a
//! `sim:staged` host lowered from it reproduces `sim:zygos` bit-for-bit
//! (pinned by `tests/staged_differential.rs`). The subsystem provably
//! generalizes the existing model rather than forking it.

use std::collections::VecDeque;
use std::ops::Range;

use zygos_net::cost::CostModel;
use zygos_sched::{
    BackgroundOrder, BuiltinDispatch, DispatchPolicy, FcfsPolicy, QuantumPolicy, RtcPolicy, Rung,
    ZygosPolicy,
};
use zygos_sim::engine::{Engine, Model, Scheduler};
use zygos_sim::stats::LatencyHistogram;
use zygos_sim::time::{SimDuration, SimTime};

use crate::arrivals::{Recorder, Req, Source};
use crate::config::{SysConfig, SysOutput, SystemKind};

/// Queue shape at one stage boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One shared FCFS queue for the whole stage (centralized FCFS): any
    /// staffed core takes the head — ideal pooling, no stealing needed.
    Cfcfs,
    /// Per-core queues keyed by the request's RSS home, never rebalanced
    /// (distributed FCFS) — IX's shape, with its temporary imbalance.
    Dfcfs,
    /// Per-core queues with ZygOS-style stealing: a dry core walks the
    /// [`ZygosPolicy`] ladder and, where it grants `StealReady`, sweeps
    /// victims (deterministic order, one item per grab, charged
    /// `steal_extra_ns`).
    #[default]
    DfcfsSteal,
}

impl QueueDiscipline {
    /// Scenario-file spelling (`cfcfs` / `dfcfs` / `dfcfs-steal`).
    pub fn label(&self) -> &'static str {
        match self {
            QueueDiscipline::Cfcfs => "cfcfs",
            QueueDiscipline::Dfcfs => "dfcfs",
            QueueDiscipline::DfcfsSteal => "dfcfs-steal",
        }
    }

    /// Parses the scenario-file spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cfcfs" => Some(QueueDiscipline::Cfcfs),
            "dfcfs" => Some(QueueDiscipline::Dfcfs),
            "dfcfs-steal" => Some(QueueDiscipline::DfcfsSteal),
            _ => None,
        }
    }
}

/// Core-role assignment for a staged pipeline (the SNIPPETS Layout1–4
/// vocabulary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoreLayout {
    /// Every core runs every stage, run-to-completion over the RX batch
    /// (Layout 2; IX's shape when the head queue is dFCFS).
    #[default]
    Unified,
    /// `net_cores` dedicated cores run all network stages back-to-back and
    /// feed the remaining application cores item by item (Layouts 3/4).
    SplitNet {
        /// Cores dedicated to the network stages (≥ 1, < total cores).
        net_cores: usize,
    },
    /// Three-way split: NIC-poll dispatcher cores, network-stack cores,
    /// application cores (Layout 1). Needs a pipeline of ≥ 3 stages.
    SplitFull {
        /// Cores dedicated to the first (NIC poll) stage.
        poll_cores: usize,
        /// Cores dedicated to the interior (network stack) stages.
        stack_cores: usize,
    },
}

impl CoreLayout {
    /// Scenario-file spelling (`unified` / `split-net` / `split-full`).
    pub fn label(&self) -> &'static str {
        match self {
            CoreLayout::Unified => "unified",
            CoreLayout::SplitNet { .. } => "split-net",
            CoreLayout::SplitFull { .. } => "split-full",
        }
    }
}

/// One pipeline stage. The **final** stage of a pipeline is always the
/// application stage: it burns the sampled service time on top of its
/// fixed cost; every other stage is pure fixed-cost network work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSpec {
    /// Stage name (unique within the pipeline; used in reports and docs).
    pub name: String,
    /// Per-batch fixed cost, ns — paid once per take, however many items
    /// the batch holds (the driver's fixed poll cost). Charged per item on
    /// the final stage (whose takes are single-item anyway).
    pub batch_fixed_ns: u64,
    /// Per-item fixed cost, ns.
    pub fixed_ns: u64,
    /// Queue shape where this stage heads a segment (interior stages of a
    /// segment run back-to-back and have no queue of their own).
    pub discipline: QueueDiscipline,
}

/// A full staged-pipeline description: the stage table plus the core
/// layout. Carried in [`SysConfig::staged`] and consulted only by
/// [`SystemKind::Staged`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagedConfig {
    /// The pipeline, in traversal order; the last stage is the
    /// application stage.
    pub stages: Vec<StageSpec>,
    /// Core-role assignment.
    pub layout: CoreLayout,
}

impl StagedConfig {
    /// The paper's three-phase pipeline with per-stage costs lifted from
    /// the calibrated cost model: NIC poll (the driver's batch-amortized
    /// grab), network stack RX, and the application stage (dispatch +
    /// syscall + TX fixed cost around the sampled service time).
    pub fn paper_pipeline(cost: &CostModel) -> Self {
        StagedConfig {
            stages: vec![
                StageSpec {
                    name: "net_poll".to_string(),
                    batch_fixed_ns: cost.driver_batch_fixed_ns,
                    fixed_ns: cost.driver_per_pkt_ns,
                    discipline: QueueDiscipline::Dfcfs,
                },
                StageSpec {
                    name: "net_stack".to_string(),
                    batch_fixed_ns: 0,
                    fixed_ns: cost.stack_rx_per_pkt_ns,
                    discipline: QueueDiscipline::Dfcfs,
                },
                StageSpec {
                    name: "app".to_string(),
                    batch_fixed_ns: 0,
                    fixed_ns: cost.event_dispatch_ns
                        + cost.syscall_batch_ns
                        + cost.stack_tx_per_msg_ns,
                    discipline: QueueDiscipline::DfcfsSteal,
                },
            ],
            layout: CoreLayout::Unified,
        }
    }

    /// The degenerate pipeline: one zero-cost `Unified` application stage
    /// under steal dispatch — "no stage decomposition requested". Runs as
    /// the plain ZygOS model, bit-for-bit (see the module docs).
    pub fn zygos_equivalent() -> Self {
        StagedConfig {
            stages: vec![StageSpec {
                name: "app".to_string(),
                batch_fixed_ns: 0,
                fixed_ns: 0,
                discipline: QueueDiscipline::DfcfsSteal,
            }],
            layout: CoreLayout::Unified,
        }
    }

    /// Whether this is the degenerate [`StagedConfig::zygos_equivalent`]
    /// pipeline (delegated verbatim to the ZygOS model).
    pub fn is_zygos_equivalent(&self) -> bool {
        self == &Self::zygos_equivalent()
    }

    /// Validates the pipeline against a core count. The lab's spec layer
    /// surfaces these as scenario errors; direct `sysim` callers hit the
    /// assert in [`run`].
    pub fn validate(&self, cores: usize) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("a staged pipeline needs at least one stage".to_string());
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.name.is_empty() {
                return Err(format!("stage {i} has an empty name"));
            }
            if self.stages[..i].iter().any(|p| p.name == s.name) {
                return Err(format!("duplicate stage name {:?}", s.name));
            }
        }
        match self.layout {
            CoreLayout::Unified => Ok(()),
            CoreLayout::SplitNet { net_cores } => {
                if self.stages.len() < 2 {
                    Err("split-net needs at least two stages (net + app)".to_string())
                } else if net_cores == 0 || net_cores >= cores {
                    Err(format!(
                        "split-net needs 1 <= net_cores < cores ({net_cores} of {cores})"
                    ))
                } else {
                    Ok(())
                }
            }
            CoreLayout::SplitFull {
                poll_cores,
                stack_cores,
            } => {
                if self.stages.len() < 3 {
                    Err("split-full needs at least three stages (poll + stack + app)".to_string())
                } else if poll_cores == 0 || stack_cores == 0 || poll_cores + stack_cores >= cores {
                    Err(format!(
                        "split-full needs poll_cores >= 1, stack_cores >= 1 and \
                         poll_cores + stack_cores < cores ({poll_cores}+{stack_cores} of {cores})"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// One queued item: the request plus its enqueue time at the current
/// segment head (the per-stage wait the telemetry buckets measure).
struct Item {
    req: Req,
    enq: SimTime,
}

/// A maximal stage run executing back-to-back on one set of cores, with a
/// queue only at its head stage.
struct Segment {
    /// Stage indices this segment runs.
    stages: Range<usize>,
    /// Global core ids staffing this segment.
    cores: Range<usize>,
    /// Head-stage queue shape.
    discipline: QueueDiscipline,
    /// The shared dispatch ladder lowered from the discipline — consulted
    /// on every take at this stage boundary.
    policy: BuiltinDispatch,
    /// One queue (cFCFS) or one per staffed core (dFCFS variants).
    queues: Vec<VecDeque<Item>>,
}

/// Lowers a discipline to the shared policy plane.
fn policy_for(d: QueueDiscipline) -> BuiltinDispatch {
    match d {
        QueueDiscipline::Cfcfs => BuiltinDispatch::Fcfs(FcfsPolicy),
        QueueDiscipline::Dfcfs => BuiltinDispatch::Rtc(RtcPolicy),
        QueueDiscipline::DfcfsSteal => BuiltinDispatch::Zygos(
            // Steal on, IPIs off (stage hand-offs wake cores explicitly),
            // no quantum; victim order deterministic so staged runs need
            // no extra RNG stream.
            ZygosPolicy::new(
                true,
                false,
                QuantumPolicy::disabled(),
                BackgroundOrder::Fcfs,
            )
            .with_randomized_victims(false),
        ),
    }
}

/// Carves the pipeline into segments per the layout. Validated configs
/// only (ranges are non-empty by [`StagedConfig::validate`]).
fn build_segments(plan: &StagedConfig, cores: usize) -> Vec<Segment> {
    let n = plan.stages.len();
    let spans: Vec<(Range<usize>, Range<usize>)> = match plan.layout {
        CoreLayout::Unified => vec![(0..n, 0..cores)],
        CoreLayout::SplitNet { net_cores } => {
            vec![(0..n - 1, 0..net_cores), (n - 1..n, net_cores..cores)]
        }
        CoreLayout::SplitFull {
            poll_cores,
            stack_cores,
        } => vec![
            (0..1, 0..poll_cores),
            (1..n - 1, poll_cores..poll_cores + stack_cores),
            (n - 1..n, poll_cores + stack_cores..cores),
        ],
    };
    spans
        .into_iter()
        .map(|(stages, cores)| {
            let discipline = plan.stages[stages.start].discipline;
            let lanes = match discipline {
                QueueDiscipline::Cfcfs => 1,
                _ => cores.len(),
            };
            Segment {
                discipline,
                policy: policy_for(discipline),
                queues: (0..lanes).map(|_| VecDeque::new()).collect(),
                stages,
                cores,
            }
        })
        .collect()
}

enum Ev {
    Gen,
    Packet(Req),
    /// A segment's run-to-completion network work over a batch finished.
    SegDone {
        core: usize,
        batch: VecDeque<Item>,
    },
    /// One application completion of the final segment's current batch.
    AppDone {
        core: usize,
        rest: VecDeque<Item>,
    },
}

struct StagedModel {
    cfg: SysConfig,
    plan: StagedConfig,
    source: Source,
    rec: Recorder,
    segs: Vec<Segment>,
    /// Core → owning segment.
    seg_of: Vec<usize>,
    busy: Vec<bool>,
    local_events: u64,
    stolen_events: u64,
    /// Items that finished each stage's processing (the conservation
    /// plane: non-increasing along the pipeline; the final entry equals
    /// `completed_total`).
    stage_counts: Vec<u64>,
    /// Per-stage queue wait at the segment heads, measurement window only
    /// (interior stages of a segment have no queue and stay empty).
    stage_wait: Vec<LatencyHistogram>,
    /// Recycled batch buffers (same idiom as the IX model).
    batch_pool: Vec<VecDeque<Item>>,
}

impl StagedModel {
    fn new(cfg: SysConfig, plan: StagedConfig) -> Self {
        let source = Source::new(&cfg);
        let rec = Recorder::new(&cfg, source.half_rtt);
        let segs = build_segments(&plan, cfg.cores);
        let mut seg_of = vec![0usize; cfg.cores];
        for (si, seg) in segs.iter().enumerate() {
            for c in seg.cores.clone() {
                seg_of[c] = si;
            }
        }
        StagedModel {
            busy: vec![false; cfg.cores],
            stage_counts: vec![0; plan.stages.len()],
            stage_wait: (0..plan.stages.len())
                .map(|_| LatencyHistogram::new())
                .collect(),
            source,
            rec,
            segs,
            seg_of,
            plan,
            cfg,
            local_events: 0,
            stolen_events: 0,
            batch_pool: Vec::new(),
        }
    }

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    /// Enqueues an item at segment `si`'s head stage and wakes a core that
    /// the segment's discipline lets serve it.
    fn enqueue(&mut self, si: usize, item: Item, now: SimTime, sched: &mut Scheduler<Ev>) {
        let wake = {
            let home = item.req.home as usize;
            let seg = &mut self.segs[si];
            match seg.discipline {
                QueueDiscipline::Cfcfs => {
                    seg.queues[0].push_back(item);
                    seg.cores.clone().find(|&c| !self.busy[c])
                }
                d => {
                    let lanes = seg.queues.len();
                    let lane = home % lanes;
                    seg.queues[lane].push_back(item);
                    let owner = seg.cores.start + lane;
                    if !self.busy[owner] {
                        Some(owner)
                    } else if d == QueueDiscipline::DfcfsSteal {
                        // The owner is mid-batch; an idle peer's ladder
                        // grants StealReady, so wake one to grab it.
                        seg.cores.clone().find(|&c| !self.busy[c])
                    } else {
                        None
                    }
                }
            }
        };
        if let Some(core) = wake {
            self.run_core(core, now, sched);
        }
    }

    /// The take at a stage boundary: walk the segment's dispatch ladder —
    /// own/shared queue at the ready rungs, victim sweep where the policy
    /// grants `StealReady`. Returns the batch and whether it was stolen.
    fn take_batch(&mut self, si: usize, core: usize) -> (VecDeque<Item>, bool) {
        let mut batch = self.batch_pool.pop().unwrap_or_default();
        // Only the pipeline-head segment batches: the NIC poll is what
        // rx_batch amortizes. Downstream boundaries hand over per item.
        let cap = if self.segs[si].stages.start == 0 {
            self.cfg.rx_batch.max(1) as usize
        } else {
            1
        };
        let seg = &mut self.segs[si];
        let lane = match seg.discipline {
            QueueDiscipline::Cfcfs => 0,
            _ => core - seg.cores.start,
        };
        let ladder: Vec<Rung> = seg.policy.ladder().to_vec();
        for rung in ladder {
            match rung {
                Rung::LocalReady | Rung::LocalNet => {
                    let q = &mut seg.queues[lane];
                    if !q.is_empty() {
                        let k = q.len().min(cap);
                        batch.extend(q.drain(..k));
                        return (batch, false);
                    }
                }
                Rung::StealReady if seg.policy.may_steal(true) => {
                    let lanes = seg.queues.len();
                    for d in 1..lanes {
                        let victim = (lane + d) % lanes;
                        if let Some(item) = seg.queues[victim].pop_front() {
                            batch.push_back(item);
                            return (batch, true);
                        }
                    }
                }
                _ => {}
            }
        }
        (batch, false)
    }

    /// The core loop at one stage boundary: take, record the head-stage
    /// wait, run the segment's network stages over the batch.
    fn run_core(&mut self, core: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.busy[core] {
            return;
        }
        let si = self.seg_of[core];
        let (batch, stole) = self.take_batch(si, core);
        if batch.is_empty() {
            self.batch_pool.push(batch);
            return;
        }
        let k = batch.len() as u64;
        if stole {
            self.stolen_events += k;
        } else {
            self.local_events += k;
        }
        let head = self.segs[si].stages.start;
        if self.rec.measurement_started() {
            for item in &batch {
                self.stage_wait[head].record_nanos(now.duration_since(item.enq).as_nanos());
            }
        }
        let last = self.plan.stages.len() - 1;
        let mut dur = 0u64;
        for sidx in self.segs[si].stages.clone() {
            if sidx == last {
                continue; // The application stage runs per item, below.
            }
            let st = &self.plan.stages[sidx];
            dur += st.batch_fixed_ns + k * st.fixed_ns;
        }
        if stole {
            dur += self.cfg.cost.steal_extra_ns;
        }
        self.busy[core] = true;
        sched.after(Self::ns(dur), Ev::SegDone { core, batch });
    }

    /// A segment's network work over a batch finished: hand the items to
    /// the next segment, or run the application stage if this is the tail
    /// segment.
    fn seg_done(
        &mut self,
        core: usize,
        mut batch: VecDeque<Item>,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let si = self.seg_of[core];
        let stages = self.segs[si].stages.clone();
        let last = self.plan.stages.len() - 1;
        let k = batch.len() as u64;
        for sidx in stages.clone() {
            if sidx < last {
                self.stage_counts[sidx] += k;
            }
        }
        if stages.end == self.plan.stages.len() {
            self.next_app(core, batch, now, sched);
        } else {
            while let Some(mut item) = batch.pop_front() {
                item.enq = now;
                self.enqueue(si + 1, item, now, sched);
            }
            self.batch_pool.push(batch);
            self.busy[core] = false;
            self.run_core(core, now, sched);
        }
    }

    /// Runs the next application item of the tail segment's batch
    /// (run-to-completion, same shape as the IX model's app alternation).
    fn next_app(
        &mut self,
        core: usize,
        mut rest: VecDeque<Item>,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        match rest.pop_front() {
            Some(item) => {
                let st = self.plan.stages.last().expect("validated: non-empty");
                let dur = st.batch_fixed_ns + st.fixed_ns + item.req.service.as_nanos();
                let end = now + Self::ns(dur);
                // The response leaves the wire at the end of this event.
                self.rec.complete(&item.req, end);
                *self.stage_counts.last_mut().expect("non-empty") += 1;
                sched.at(end, Ev::AppDone { core, rest });
            }
            None => {
                self.batch_pool.push(rest);
                self.busy[core] = false;
                self.run_core(core, now, sched);
            }
        }
    }
}

impl Model for StagedModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.rec.is_done() {
            sched.stop();
            return;
        }
        match ev {
            Ev::Gen => {
                let req = self.source.next_req(now);
                sched.after(self.source.half_rtt, Ev::Packet(req));
                let gap = self.source.next_gap();
                sched.after(gap, Ev::Gen);
            }
            Ev::Packet(req) => {
                self.enqueue(0, Item { req, enq: now }, now, sched);
            }
            Ev::SegDone { core, batch } => self.seg_done(core, batch, now, sched),
            Ev::AppDone { core, rest } => self.next_app(core, rest, now, sched),
        }
    }
}

/// Runs the staged-pipeline system simulation. The degenerate
/// [`StagedConfig::zygos_equivalent`] pipeline is delegated verbatim to
/// the ZygOS model (the bit-identity contract); everything else runs the
/// segment engine.
pub(crate) fn run(cfg: &SysConfig) -> SysOutput {
    debug_assert_eq!(cfg.system, SystemKind::Staged);
    let plan = cfg
        .staged
        .clone()
        .unwrap_or_else(|| StagedConfig::paper_pipeline(&cfg.cost));
    if plan.is_zygos_equivalent() {
        let mut inner = cfg.clone();
        inner.system = SystemKind::Zygos;
        inner.staged = None;
        return crate::zygos::run(&inner);
    }
    if let Err(e) = plan.validate(cfg.cores) {
        panic!("invalid staged config: {e}");
    }
    let mut engine = Engine::new(StagedModel::new(cfg.clone(), plan));
    engine.schedule(SimTime::ZERO, Ev::Gen);
    engine.run();
    let now = engine.now();
    let events = engine.processed();
    let model = engine.into_model();
    let window = model.rec.window_us();
    SysOutput {
        // The staged plane measures per-stage waits itself; the lifecycle
        // tracer instruments the ZygOS-family path only.
        telemetry: None,
        latency: model.rec.latency.clone(),
        completed: model.rec.measured(),
        generated: model.source.emitted(),
        completed_total: model.rec.completed_total(),
        events,
        sim_time_us: if window > 0.0 {
            window
        } else {
            now.as_micros_f64()
        },
        local_events: model.local_events,
        stolen_events: model.stolen_events,
        ipis: 0,
        preemptions: 0,
        avg_active_cores: cfg.cores as f64,
        admitted: 0,
        rejected: 0,
        wire_rejects: 0,
        retries: 0,
        give_ups: 0,
        timeouts: 0,
        rtt_us: cfg.cost.network_rtt_ns as f64 / 1_000.0,
        rejected_by_class: vec![0],
        admitted_by_class: vec![0],
        stage_counts: model.stage_counts,
        stage_p99_wait_us: model
            .stage_wait
            .iter()
            .map(|h| if h.is_empty() { 0.0 } else { h.p99_us() })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zygos_sim::dist::ServiceDist;

    fn staged_cfg(load: f64, plan: StagedConfig) -> SysConfig {
        let mut cfg = SysConfig::paper(SystemKind::Staged, ServiceDist::exponential_us(10.0), load);
        cfg.cores = 8;
        cfg.conns = 128;
        cfg.requests = 12_000;
        cfg.warmup = 2_000;
        cfg.staged = Some(plan);
        cfg
    }

    #[test]
    fn degenerate_pipeline_is_bit_identical_to_zygos() {
        let cfg = staged_cfg(0.6, StagedConfig::zygos_equivalent());
        let mut zcfg = cfg.clone();
        zcfg.system = SystemKind::Zygos;
        zcfg.staged = None;
        let s = run(&cfg);
        let z = crate::zygos::run(&zcfg);
        assert_eq!(s.p99_us().to_bits(), z.p99_us().to_bits());
        assert_eq!(s.latency.p50_us().to_bits(), z.latency.p50_us().to_bits());
        assert_eq!(s.completed, z.completed);
        assert_eq!(s.generated, z.generated);
        assert_eq!(s.stolen_events, z.stolen_events);
        assert_eq!(s.events, z.events);
        assert!(
            s.stage_counts.is_empty(),
            "delegated run has no stage plane"
        );
    }

    #[test]
    fn every_layout_conserves_stage_completions() {
        let cost = CostModel::zygos();
        let mut paper = StagedConfig::paper_pipeline(&cost);
        for layout in [
            CoreLayout::Unified,
            CoreLayout::SplitNet { net_cores: 2 },
            CoreLayout::SplitFull {
                poll_cores: 1,
                stack_cores: 2,
            },
        ] {
            paper.layout = layout;
            let out = run(&staged_cfg(0.5, paper.clone()));
            assert_eq!(out.completed, 12_000, "{layout:?}");
            assert_eq!(out.stage_counts.len(), 3, "{layout:?}");
            // No request skips a stage: counts are non-increasing along
            // the pipeline and the app count is exactly completed_total.
            for w in out.stage_counts.windows(2) {
                assert!(w[0] >= w[1], "{layout:?}: {:?}", out.stage_counts);
            }
            assert_eq!(
                *out.stage_counts.last().expect("3 stages"),
                out.completed_total,
                "{layout:?}"
            );
            assert_eq!(out.stage_p99_wait_us.len(), 3, "{layout:?}");
        }
    }

    #[test]
    fn split_layouts_queue_at_their_stage_boundaries() {
        let cost = CostModel::zygos();
        let mut plan = StagedConfig::paper_pipeline(&cost);
        plan.layout = CoreLayout::SplitNet { net_cores: 2 };
        let out = run(&staged_cfg(0.7, plan));
        // The app stage heads its own segment under split-net, so its
        // wait bucket is populated; interior stages of the net segment
        // (net_stack) never queue.
        assert!(
            out.stage_p99_wait_us[0] > 0.0,
            "{:?}",
            out.stage_p99_wait_us
        );
        assert_eq!(out.stage_p99_wait_us[1], 0.0, "{:?}", out.stage_p99_wait_us);
        assert!(
            out.stage_p99_wait_us[2] > 0.0,
            "{:?}",
            out.stage_p99_wait_us
        );
    }

    #[test]
    fn steal_discipline_rebalances_and_plain_dfcfs_does_not() {
        let cost = CostModel::zygos();
        let mut plan = StagedConfig::paper_pipeline(&cost);
        plan.layout = CoreLayout::SplitNet { net_cores: 2 };
        let stealing = run(&staged_cfg(0.7, plan.clone()));
        assert!(stealing.stolen_events > 0, "dfcfs-steal rebalances");
        plan.stages[2].discipline = QueueDiscipline::Dfcfs;
        let partitioned = run(&staged_cfg(0.7, plan));
        assert_eq!(partitioned.stolen_events, 0, "dfcfs never steals");
        assert!(
            partitioned.p99_us() > stealing.p99_us(),
            "stealing cuts the tail: dfcfs {} vs steal {}",
            partitioned.p99_us(),
            stealing.p99_us()
        );
    }

    #[test]
    fn unified_batch_commitment_blocks_where_split_app_cores_do_not() {
        // High-dispersion service + deep RX batches: a unified core
        // commits to its whole batch run-to-completion, so short requests
        // ride behind a long batch-mate; split-net app cores take work
        // item by item (with stealing) and dodge that head-of-line
        // blocking. This is the crossover `scenarios/staged_layouts.toml`
        // gates at full scale.
        let cost = CostModel::zygos();
        let service = ServiceDist::TwoPoint {
            fast_us: 2.0,
            slow_us: 200.0,
            p_fast: 0.95,
        };
        let mk = |layout, discipline: Option<QueueDiscipline>| {
            let mut plan = StagedConfig::paper_pipeline(&cost);
            plan.layout = layout;
            if let Some(d) = discipline {
                for s in &mut plan.stages {
                    s.discipline = d;
                }
            }
            let service = service.clone();
            move |load: f64| {
                let mut cfg = SysConfig::paper(SystemKind::Staged, service.clone(), load);
                cfg.cores = 16;
                cfg.conns = 256;
                cfg.requests = 20_000;
                cfg.warmup = 4_000;
                cfg.staged = Some(plan.clone());
                cfg
            }
        };
        let unified = mk(CoreLayout::Unified, Some(QueueDiscipline::Cfcfs));
        let split = mk(CoreLayout::SplitNet { net_cores: 1 }, None);
        // Low load: pooling all 16 cores beats parking one on the NIC.
        let (u_low, s_low) = (run(&unified(0.5)), run(&split(0.5)));
        assert!(
            u_low.p99_us() <= s_low.p99_us(),
            "unified p99 {} should not exceed split p99 {} at low load",
            u_low.p99_us(),
            s_low.p99_us()
        );
        // High load: deep queues mean deep batches, and batch commitment
        // strands short requests behind slow batch-mates.
        let (u_hi, s_hi) = (run(&unified(0.8)), run(&split(0.8)));
        assert!(
            u_hi.p99_us() > 1.1 * s_hi.p99_us(),
            "unified p99 {} should exceed split p99 {} at high load",
            u_hi.p99_us(),
            s_hi.p99_us()
        );
    }

    #[test]
    #[ignore]
    fn probe_crossover_grid() {
        // Tuning probe, not a regression test: prints the unified-vs-split
        // p99 grid used to size scenarios/staged_layouts.toml.
        let cost = CostModel::zygos();
        let service = ServiceDist::TwoPoint {
            fast_us: 2.0,
            slow_us: 200.0,
            p_fast: 0.95,
        };
        for &load in &[0.2, 0.5, 0.7, 0.8, 0.85, 0.88, 0.9, 0.92] {
            let mk = |layout, disc: Option<QueueDiscipline>| {
                let mut plan = StagedConfig::paper_pipeline(&cost);
                plan.layout = layout;
                if let Some(d) = disc {
                    for s in &mut plan.stages {
                        s.discipline = d;
                    }
                }
                let mut cfg = SysConfig::paper(SystemKind::Staged, service.clone(), load);
                cfg.cores = 16;
                cfg.conns = 256;
                cfg.requests = 20_000;
                cfg.warmup = 4_000;
                cfg.staged = Some(plan);
                run(&cfg)
            };
            let uc = mk(CoreLayout::Unified, Some(QueueDiscipline::Cfcfs));
            let s1 = mk(CoreLayout::SplitNet { net_cores: 1 }, None);
            let s2 = mk(CoreLayout::SplitNet { net_cores: 2 }, None);
            let sf = mk(
                CoreLayout::SplitFull {
                    poll_cores: 1,
                    stack_cores: 1,
                },
                None,
            );
            println!(
                "load {load:.2}: unified-cfcfs {:8.1}  split-net1 {:8.1}  split-net2 {:8.1}  split-full {:8.1}",
                uc.p99_us(),
                s1.p99_us(),
                s2.p99_us(),
                sf.p99_us()
            );
        }
    }

    #[test]
    fn validation_rejects_malformed_pipelines() {
        let cost = CostModel::zygos();
        let good = StagedConfig::paper_pipeline(&cost);
        assert!(good.validate(16).is_ok());
        let empty = StagedConfig {
            stages: vec![],
            layout: CoreLayout::Unified,
        };
        assert!(empty.validate(16).unwrap_err().contains("at least one"));
        let mut dup = good.clone();
        dup.stages[1].name = "net_poll".to_string();
        assert!(dup.validate(16).unwrap_err().contains("duplicate"));
        let mut all_net = good.clone();
        all_net.layout = CoreLayout::SplitNet { net_cores: 16 };
        assert!(all_net.validate(16).unwrap_err().contains("net_cores"));
        let mut two_stage_full = good.clone();
        two_stage_full.stages.truncate(2);
        two_stage_full.layout = CoreLayout::SplitFull {
            poll_cores: 1,
            stack_cores: 1,
        };
        assert!(two_stage_full
            .validate(16)
            .unwrap_err()
            .contains("three stages"));
    }
}
