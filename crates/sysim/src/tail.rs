//! Importance-splitting (RESTART) rare-event mode.
//!
//! Far-tail quantiles (p99.9 and beyond) are driven by rare excursions
//! into deep backlog: a brute-force run must wait for them to happen by
//! chance, so the number of samples past the quantile grows only linearly
//! in run length. RESTART (REstart with Splitting After Threshold
//! crossing) concentrates simulation effort on those excursions instead:
//!
//! * The **level function** is the total queued-request backlog
//!   (`ZygosModel::backlog`), checked every
//!   [`TailConfig::check_every`] events.
//! * When a trajectory first crosses threshold `levels[i]` going up, it is
//!   **split**: `splits - 1` clones of the entire simulated world are
//!   forked (each on an independent RNG substream), and every trajectory
//!   in the now `splits`-wide bundle carries `1/splits` of the previous
//!   weight — the estimator stays unbiased in expectation because the
//!   bundle explores the same rare region `splits` times.
//! * A clone **dies** when it falls back below the level it was born at;
//!   the master trajectory instead **restores** its weight (re-arming the
//!   level for the next excursion, with hysteresis so boundary jitter
//!   does not thrash the splitter).
//! * Completions are recorded as **weighted samples**
//!   ([`zygos_sim::stats::WeightedSamples`]), and the far-tail quantile is
//!   read from the weighted distribution.
//!
//! The master trajectory keeps the original RNG streams and is never
//! perturbed by the clones, so its own path — and therefore the returned
//! [`SysOutput`] — is *bit-identical* to a brute-force [`crate::run_system`]
//! at the same config. That makes the committed splitting-vs-brute
//! scenario an apples-to-apples comparison: same base trajectory, plus
//! weighted clone mass in the tail.
//!
//! Estimator bias caveats (quantified in `docs/TAIL.md`): the level
//! check is periodic rather than continuous (crossings inside a segment
//! split late), the horizon is a completion count rather than a time
//! window, and the clone budget truncates splitting in pathological
//! regimes — [`TailOutput::truncated`] reports when that happened.

use zygos_sim::engine::Engine;
use zygos_sim::stats::WeightedSamples;
use zygos_sim::time::SimTime;

use crate::config::{SysConfig, SysOutput};
use crate::zygos::{self, Ev, ZygosModel};

/// Knobs of the RESTART estimator.
#[derive(Clone, Debug)]
pub struct TailConfig {
    /// The far-tail quantile to estimate (e.g. `0.999`).
    pub quantile: f64,
    /// Ascending backlog thresholds (total queued requests) that trigger
    /// splitting.
    pub levels: Vec<usize>,
    /// Bundle width per level crossing: each up-crossing multiplies the
    /// trajectory count by this and divides the weight by it.
    pub splits: usize,
    /// Events between backlog-level checks.
    pub check_every: u64,
    /// Maximum events spent in clone trajectories (`0` = unlimited). When
    /// the budget is exhausted no further clones are spawned; crossings
    /// that could not split are counted in [`TailOutput::truncated`].
    pub clone_budget: u64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            quantile: 0.999,
            levels: vec![32, 64],
            splits: 4,
            check_every: 64,
            clone_budget: 2_000_000,
        }
    }
}

impl TailConfig {
    fn validate(&self) {
        assert!(
            self.quantile > 0.0 && self.quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        assert!(!self.levels.is_empty(), "need at least one split level");
        assert!(
            self.levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly ascending"
        );
        assert!(self.splits >= 2, "splitting needs a bundle width of >= 2");
        assert!(self.check_every >= 1, "check period must be >= 1 event");
    }
}

/// What the RESTART estimator measured.
#[derive(Clone, Debug)]
pub struct TailOutput {
    /// The quantile that was estimated.
    pub quantile: f64,
    /// Weighted-quantile estimate (µs) over master + clone completions.
    pub value_us: f64,
    /// The same quantile read from the master (= brute-force) histogram
    /// alone, for the matched-cost comparison.
    pub brute_value_us: f64,
    /// Weighted samples pooled into the estimate.
    pub samples: usize,
    /// Total weight of the pooled samples (≈ the master's measured count).
    pub total_weight: f64,
    /// Engine events spent on the master trajectory.
    pub master_events: u64,
    /// Engine events spent on clone trajectories.
    pub clone_events: u64,
    /// Clone trajectories spawned.
    pub clones: u64,
    /// Split opportunities skipped because the clone budget ran out
    /// (nonzero means the estimate is truncation-biased; rerun with a
    /// larger [`TailConfig::clone_budget`]).
    pub truncated: u64,
    /// Deepest backlog observed at a level check, across all trajectories.
    pub max_backlog: usize,
}

/// One live trajectory on the exploration stack.
struct Traj {
    engine: Engine<ZygosModel>,
    weight: f64,
    /// Level index (1-based) the trajectory was born at; `0` for the
    /// master, which never dies.
    birth: usize,
    /// Next level index to split at.
    arm: usize,
}

/// Runs `cfg` in importance-splitting mode. Returns the master
/// trajectory's output (bit-identical to `run_system(cfg)`) plus the
/// weighted far-tail estimate.
///
/// # Panics
///
/// Panics on non-ZygOS-family systems, telemetry-armed configs (the
/// checkpoint plane drops the observer), or invalid [`TailConfig`] knobs.
pub fn run_restart(cfg: &SysConfig, tail: &TailConfig) -> (SysOutput, TailOutput) {
    assert!(
        zygos::is_zygos_family(cfg),
        "importance splitting needs the checkpointable ZygOS-family model"
    );
    assert!(
        cfg.telemetry.is_none(),
        "importance splitting is telemetry-off (clones drop the observer)"
    );
    tail.validate();

    let mut model = ZygosModel::new(cfg.clone());
    model.arm_tail_sampling();
    let control = model.wants_control_tick();
    let mut engine = Engine::new(model);
    engine.schedule(SimTime::ZERO, Ev::Gen);
    if control {
        engine.schedule(SimTime::ZERO, Ev::Control);
    }

    let mut est = WeightedSamples::new();
    let mut stack = vec![Traj {
        engine,
        weight: 1.0,
        birth: 0,
        arm: 0,
    }];
    let mut clone_seq = 0u64;
    let mut master_events = 0u64;
    let mut clone_events = 0u64;
    let mut truncated = 0u64;
    let mut max_backlog = 0usize;
    let mut master_out = None;

    // Depth-first over the split tree: deterministic (LIFO order, clone
    // streams numbered by spawn order) and memory-bounded (the stack holds
    // at most one bundle per level).
    while let Some(mut t) = stack.pop() {
        loop {
            // One segment: up to `check_every` events.
            let mut stepped = 0u64;
            while stepped < tail.check_every {
                if t.engine.model().is_done() || !t.engine.step() {
                    break;
                }
                stepped += 1;
            }
            if t.birth == 0 {
                master_events += stepped;
            } else {
                clone_events += stepped;
            }
            let w = t.weight;
            for ns in t.engine.model_mut().drain_tail() {
                est.push(ns, w);
            }
            if t.engine.model().is_done() || stepped == 0 {
                if t.birth == 0 {
                    let now = t.engine.now();
                    let events = master_events;
                    master_out = Some(t.engine.into_model().into_output(now, events));
                }
                break;
            }
            let b = t.engine.model().backlog();
            max_backlog = max_backlog.max(b);
            if t.birth > 0 && b * 2 < tail.levels[t.birth - 1] {
                // The clone left its birth level's band: it dies. The
                // death threshold is the *same* half-level hysteresis the
                // master's weight-restore uses below — while any bundle
                // member is inside the band `[level/2, level)`, all
                // `splits` members are alive at `weight/splits`, so the
                // bundle's pooled mass stays exactly the pre-split weight.
                // Mismatched thresholds would leave the master alone in
                // the band at reduced weight, deflating the estimator.
                break;
            }
            if t.arm < tail.levels.len() && b >= tail.levels[t.arm] {
                // Up-crossing: split into a `splits`-wide bundle.
                t.arm += 1;
                t.weight /= tail.splits as f64;
                for _ in 0..tail.splits - 1 {
                    if tail.clone_budget > 0 && clone_events >= tail.clone_budget {
                        truncated += 1;
                        continue;
                    }
                    clone_seq += 1;
                    let mut e = t.engine.checkpoint();
                    e.model_mut().fork_streams(clone_seq);
                    stack.push(Traj {
                        engine: e,
                        weight: t.weight,
                        birth: t.arm,
                        arm: t.arm,
                    });
                }
            } else if t.arm > t.birth && b * 2 < tail.levels[t.arm - 1] {
                // The master (or a deep clone) left the rare region:
                // restore the weight and re-arm the level for the next
                // excursion. The factor-2 hysteresis keeps boundary
                // jitter from thrashing split/restore cycles.
                t.weight *= tail.splits as f64;
                t.arm -= 1;
            }
        }
    }

    let out = master_out.expect("master trajectory runs to completion");
    let brute_value_us = out.latency.quantile_us(tail.quantile);
    let value_us = if est.is_empty() {
        f64::NAN
    } else {
        est.quantile_us(tail.quantile)
    };
    let tail_out = TailOutput {
        quantile: tail.quantile,
        value_us,
        brute_value_us,
        samples: est.len(),
        total_weight: est.total_weight(),
        master_events,
        clone_events,
        clones: clone_seq,
        truncated,
        max_backlog,
    };
    (out, tail_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use crate::driver::run_system;
    use zygos_sim::dist::ServiceDist;

    fn cfg(load: f64) -> SysConfig {
        let mut c = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), load);
        c.requests = 12_000;
        c.warmup = 2_000;
        c
    }

    #[test]
    fn master_trajectory_is_bit_identical_to_brute_force() {
        let c = cfg(0.75);
        let brute = run_system(&c);
        let (master, t) = run_restart(
            &c,
            &TailConfig {
                levels: vec![12, 24],
                ..TailConfig::default()
            },
        );
        // Clones must never perturb the master: same completions, same
        // histogram, same event count.
        assert_eq!(master.completed, brute.completed);
        assert_eq!(master.events, brute.events);
        assert_eq!(master.p99_us(), brute.p99_us());
        assert_eq!(master.latency.count(), brute.latency.count());
        assert_eq!(t.brute_value_us, brute.latency.quantile_us(t.quantile));
    }

    #[test]
    fn splitting_multiplies_tail_mass_at_matched_base_cost() {
        let c = cfg(0.8);
        let (_, t) = run_restart(
            &c,
            &TailConfig {
                quantile: 0.999,
                levels: vec![10, 20],
                splits: 4,
                check_every: 64,
                clone_budget: 4_000_000,
            },
        );
        assert!(t.clones > 0, "load 0.8 must cross a backlog of 10");
        assert!(
            t.samples as u64 > c.requests,
            "clone completions must add tail mass: {} samples",
            t.samples
        );
        // The weighted estimate must land in the same regime as the brute
        // quantile (same distribution, more tail evidence).
        assert!(t.value_us.is_finite() && t.value_us > 0.0);
        let ratio = t.value_us / t.brute_value_us;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "splitting p99.9 {} vs brute {} diverged",
            t.value_us,
            t.brute_value_us
        );
        // Weight conservation: the pooled weight stays within a few
        // percent of the master's measured count (clone bundles conserve
        // expected mass; boundary effects explain the slack).
        let rel = (t.total_weight - c.requests as f64).abs() / c.requests as f64;
        assert!(
            rel < 0.25,
            "total weight {} vs target {}",
            t.total_weight,
            c.requests
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let c = cfg(0.8);
        let knobs = TailConfig {
            levels: vec![10, 20],
            ..TailConfig::default()
        };
        let (_, a) = run_restart(&c, &knobs);
        let (_, b) = run_restart(&c, &knobs);
        assert_eq!(a.value_us, b.value_us);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.clones, b.clones);
        assert_eq!(a.clone_events, b.clone_events);
    }
}
