//! Calibration tests: the simulator must reproduce the paper's headline
//! efficiency numbers (abstract and §6.1) within tolerance.
//!
//! These are the anchors that keep the cost model honest: they use the
//! public API exactly as the figure binaries do.

use zygos_sim::dist::ServiceDist;
use zygos_sim::queueing::Policy;
use zygos_sysim::{max_load_at_slo, theory_max_load_at_slo, SysConfig, SystemKind};

fn cfg(system: SystemKind, mean_us: f64) -> SysConfig {
    let mut c = SysConfig::paper(system, ServiceDist::exponential_us(mean_us), 0.5);
    c.requests = 40_000;
    c.warmup = 8_000;
    c
}

/// Abstract: "for an SLO expressed at the 99th percentile, ZygOS achieves
/// 75% of the maximum possible load determined by a theoretical,
/// zero-overhead model (centralized queueing with FCFS) for 10µs tasks".
#[test]
fn zygos_efficiency_at_10us_near_75_percent() {
    let service = ServiceDist::exponential_us(10.0);
    let slo_us = 100.0;
    let zygos = max_load_at_slo(&cfg(SystemKind::Zygos, 10.0), slo_us, 40);
    let bound = theory_max_load_at_slo(&service, 16, Policy::CentralFcfs, 10.0, 60_000, 40);
    let eff = zygos / bound;
    assert!(
        (0.60..0.90).contains(&eff),
        "ZygOS 10us efficiency = {eff:.3} (load {zygos:.3} / bound {bound:.3})"
    );
}

/// Abstract: "... and 88% for 25µs tasks".
#[test]
fn zygos_efficiency_at_25us_near_88_percent() {
    let service = ServiceDist::exponential_us(25.0);
    let slo_us = 250.0;
    let zygos = max_load_at_slo(&cfg(SystemKind::Zygos, 25.0), slo_us, 40);
    let bound = theory_max_load_at_slo(&service, 16, Policy::CentralFcfs, 10.0, 60_000, 40);
    let eff = zygos / bound;
    assert!(
        (0.75..0.97).contains(&eff),
        "ZygOS 25us efficiency = {eff:.3} (load {zygos:.3} / bound {bound:.3})"
    );
}

/// §6.1 ordering at the 10×S̄ SLO for 10µs exponential tasks:
/// ZygOS > Linux-floating and ZygOS > IX > Linux-partitioned.
#[test]
fn figure7_system_ordering_holds() {
    let slo_us = 100.0;
    let zygos = max_load_at_slo(&cfg(SystemKind::Zygos, 10.0), slo_us, 25);
    let ix = max_load_at_slo(&cfg(SystemKind::Ix, 10.0), slo_us, 25);
    let lf = max_load_at_slo(&cfg(SystemKind::LinuxFloating, 10.0), slo_us, 25);
    let lp = max_load_at_slo(&cfg(SystemKind::LinuxPartitioned, 10.0), slo_us, 25);
    assert!(zygos > ix, "zygos {zygos} vs ix {ix}");
    assert!(zygos > lf, "zygos {zygos} vs linux-floating {lf}");
    assert!(ix >= lp, "ix {ix} vs linux-partitioned {lp}");
    println!("load@SLO: zygos={zygos:.2} ix={ix:.2} linux-float={lf:.2} linux-part={lp:.2}");
}

/// §3.4: Linux-floating eventually beats IX as tasks grow (crossover near
/// 20µs for the exponential distribution).
#[test]
fn linux_floating_overtakes_ix_for_large_tasks() {
    let mean = 100.0;
    let slo_us = 10.0 * mean;
    let ix = max_load_at_slo(&cfg(SystemKind::Ix, mean), slo_us, 25);
    let lf = max_load_at_slo(&cfg(SystemKind::LinuxFloating, mean), slo_us, 25);
    assert!(
        lf > ix,
        "at 100us tasks floating ({lf}) must beat IX ({ix})"
    );
}

/// IX with batching disabled converges to the partitioned-FCFS bound as the
/// task size grows (Figure 3): ≥90% efficiency at 25µs.
#[test]
fn ix_efficiency_matches_figure3() {
    let service = ServiceDist::exponential_us(25.0);
    let ix = max_load_at_slo(&cfg(SystemKind::Ix, 25.0), 250.0, 40);
    let bound = theory_max_load_at_slo(&service, 16, Policy::PartitionedFcfs, 10.0, 60_000, 40);
    let eff = ix / bound;
    assert!(
        eff > 0.85,
        "IX 25us efficiency vs partitioned bound = {eff:.3}"
    );
}
