//! The unified metrics registry.
//!
//! Named counters, gauges and bounded time-series. Registration (by
//! name) happens once at setup and returns an index-typed handle;
//! updates through the handle are array stores — no hashing, no
//! allocation — so a control tick can publish a dozen points without
//! perturbing the host it is observing.
//!
//! Both hosts publish into this vocabulary: the simulator's `Ev::Control`
//! tick and the live runtime's worker-0 control tick. A reader takes a
//! point-in-time snapshot (`series`, `counter_value`, `gauge_value`) —
//! nothing is consumed, which is the fix for the read-once-and-lost
//! control-tick gauges this registry replaces.

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered time-series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesId(usize);

/// One named, bounded time-series (time in µs, value dimensionless).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    /// Registry name (see `docs/OBSERVABILITY.md` for the scheme).
    pub name: String,
    /// `(t_us, value)` points in push order.
    pub points: Vec<(f64, f64)>,
    /// Points refused once the cap was hit (the series keeps its head).
    pub truncated: u64,
    cap: usize,
}

impl TimeSeries {
    /// Latest pushed value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// The registry: registration by name, updates by handle.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    series: Vec<TimeSeries>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-finds) a counter named `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or re-finds) a gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or re-finds) a time-series named `name`, holding at
    /// most `cap` points (preallocated; pushes past the cap are counted
    /// and refused, never reallocated).
    pub fn register_series(&mut self, name: &str, cap: usize) -> SeriesId {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            return SeriesId(i);
        }
        self.series.push(TimeSeries {
            name: name.to_string(),
            points: Vec::with_capacity(cap),
            truncated: 0,
            cap: cap.max(1),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Appends a `(t_us, value)` point to a series (no-op past the cap).
    #[inline]
    pub fn push(&mut self, id: SeriesId, t_us: f64, v: f64) {
        let s = &mut self.series[id.0];
        if s.points.len() < s.cap {
            s.points.push((t_us, v));
        } else {
            s.truncated += 1;
        }
    }

    /// Current counter value by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Current gauge value by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A series by name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// All series, in registration order.
    pub fn all_series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Clones the series out (registration order) — the harvest path
    /// from a host into a report.
    pub fn take_series(&self) -> Vec<TimeSeries> {
        self.series.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_updates_are_visible() {
        let mut r = Registry::new();
        let c = r.counter("admitted");
        assert_eq!(r.counter("admitted"), c);
        r.inc(c, 3);
        r.inc(c, 4);
        assert_eq!(r.counter_value("admitted"), Some(7));

        let g = r.gauge("slo_ratio");
        r.set(g, 1.25);
        r.set(g, 0.75);
        // Re-readable, not read-once: both reads see the latest value.
        assert_eq!(r.gauge_value("slo_ratio"), Some(0.75));
        assert_eq!(r.gauge_value("slo_ratio"), Some(0.75));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn series_caps_without_reallocating() {
        let mut r = Registry::new();
        let s = r.register_series("active_cores", 3);
        for i in 0..5 {
            r.push(s, i as f64, 16.0 - i as f64);
        }
        let ts = r.series("active_cores").expect("registered");
        assert_eq!(ts.points.len(), 3);
        assert_eq!(ts.truncated, 2);
        assert_eq!(ts.last(), Some(14.0));
    }
}
