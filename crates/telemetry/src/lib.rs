//! `zygos-telemetry` — the telemetry plane shared by both hosts.
//!
//! Three layers, each usable on its own (see `docs/OBSERVABILITY.md` for
//! the full catalog and the decomposition math):
//!
//! * [`trace`] — a per-core, zero-alloc, fixed-capacity ring-buffer
//!   tracer of request lifecycle points (arrival, admit/shed, enqueue,
//!   dispatch, steal, preempt, background-requeue, completion). The
//!   simulator stamps events with sim time; the live runtime stamps them
//!   with nanoseconds since ingress. Recording is a bounds-checked store
//!   into a preallocated ring — no allocation, no branching beyond the
//!   sampling gate — so the PR-5 hot loop stays inside its bench gate.
//! * [`registry`] — named counters, gauges and bounded time-series that
//!   both `zygos-sysim`'s control tick and the live runtime's worker-0
//!   control tick publish into, replacing ad-hoc output-field accretion.
//! * [`decomp`] — turns a merged event stream back into per-request
//!   sojourn decompositions (`total = queue + service + steal + preempt`,
//!   an exact partition) and per-quantile breakdowns, plus a Chrome
//!   trace-event emitter ([`chrome`]) for flamegraph-style inspection.
//!
//! # Example
//!
//! ```
//! use zygos_telemetry::trace::{TraceKind, Tracer};
//! use zygos_telemetry::decomp::{decompose, decomposition_at_quantile};
//!
//! let mut t = Tracer::new(1, 64, 1);
//! // One request: queued 900ns behind a long job, then 100ns of service.
//! t.record(0, 0, TraceKind::Arrival, 0);
//! t.record(0, 0, TraceKind::Enqueue, 10);
//! t.record(0, 0, TraceKind::Dispatch, 910);
//! t.record(0, 0, TraceKind::Completion, 1010);
//! let mut d = decompose(&t.collect());
//! assert_eq!(d.len(), 1);
//! assert_eq!(d[0].queue_ns, 910);
//! assert_eq!(d[0].service_ns, 100);
//! assert_eq!(d[0].total_ns, d[0].sum_ns());
//! let p99 = decomposition_at_quantile(&mut d, 0.99).unwrap();
//! assert_eq!(p99.total_ns, 1010);
//! ```

pub mod chrome;
pub mod decomp;
pub mod registry;
pub mod trace;

pub use chrome::ChromeTrace;
pub use decomp::{decompose, decomposition_at_quantile, Decomposition};
pub use registry::{CounterId, GaugeId, Registry, SeriesId, TimeSeries};
pub use trace::{TraceEvent, TraceKind, Tracer};

/// Which time-series a host should harvest on its control tick.
///
/// The scenario plane lowers a `[telemetry]` block onto this; both hosts
/// publish under the same [`registry`] naming scheme so reports and tests
/// read one vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Admitted throughput over the tick window (MRPS).
    AdmittedRate,
    /// Credit pool capacity (total credits the AIMD gate will extend).
    CreditCapacity,
    /// Granted (unparked) cores.
    ActiveCores,
    /// Per-class shed rate over the tick window (one series per class).
    ShedByClass,
    /// p99 of completions inside the tick window (µs) — the signal the
    /// metastable-recovery gates read: unlike the whole-run histogram it
    /// forgets the burst once the burst is over.
    WindowP99,
    /// Retry re-issues over the tick window (MRPS of retried sends) —
    /// how hard the closed retry loop is feeding back.
    RetryRate,
}

impl SeriesKind {
    /// Canonical registry name (per-class kinds take a class suffix).
    pub fn name(&self) -> &'static str {
        match self {
            SeriesKind::AdmittedRate => "admitted_rate",
            SeriesKind::CreditCapacity => "credit_capacity",
            SeriesKind::ActiveCores => "active_cores",
            SeriesKind::ShedByClass => "shed_rate_class",
            SeriesKind::WindowP99 => "window_p99_us",
            SeriesKind::RetryRate => "retry_rate",
        }
    }

    /// Parses the scenario-plane spelling.
    pub fn parse(s: &str) -> Option<SeriesKind> {
        Some(match s {
            "admitted_rate" => SeriesKind::AdmittedRate,
            "credit_capacity" => SeriesKind::CreditCapacity,
            "active_cores" => SeriesKind::ActiveCores,
            "shed_by_class" => SeriesKind::ShedByClass,
            "window_p99_us" => SeriesKind::WindowP99,
            "retry_rate" => SeriesKind::RetryRate,
            _ => return None,
        })
    }
}

/// Telemetry knobs a host run is configured with.
///
/// `None`-like defaults everywhere: an all-off config records nothing and
/// costs one predictable branch per lifecycle point.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryConfig {
    /// Arm the lifecycle tracer.
    pub trace: bool,
    /// Record every `sample_period`-th request (1 = every request). The
    /// gate is per-request, not per-event: a sampled request's whole
    /// lifecycle is recorded so decomposition never sees torn lifecycles.
    pub sample_period: u32,
    /// Time-series to harvest on the control tick.
    pub series: Vec<SeriesKind>,
    /// Harvest one series point every `series_every` control ticks.
    pub series_every: u32,
    /// Hard cap on stored points per series (oldest kept; the tail is
    /// dropped and counted, never reallocated).
    pub max_series_points: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace: false,
            sample_period: 1,
            series: Vec::new(),
            series_every: 1,
            max_series_points: 4096,
        }
    }
}

impl TelemetryConfig {
    /// Full-fidelity tracing, no series: what `lab trace` runs with.
    pub fn full_trace() -> Self {
        TelemetryConfig {
            trace: true,
            ..TelemetryConfig::default()
        }
    }

    /// True when this config asks for nothing at all.
    pub fn is_off(&self) -> bool {
        !self.trace && self.series.is_empty()
    }
}

/// What a traced host run hands back: the merged event stream plus the
/// harvested time-series, both deterministic for deterministic hosts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryOut {
    /// Lifecycle events, merged across cores and time-sorted.
    pub events: Vec<TraceEvent>,
    /// Events overwritten by ring wrap-around (0 = complete capture).
    pub dropped: u64,
    /// Harvested time-series (time in µs since run start).
    pub series: Vec<TimeSeries>,
}

impl TelemetryOut {
    /// Prefixes every series name with `prefix` — the fleet plane's
    /// per-shard namespacing (`shard3/credit.capacity`), applied before
    /// shard harvests are merged into one fleet-level report so the
    /// registry's flat names stay unambiguous. Lifecycle events are left
    /// untouched: their correlation keys are per-world sequence numbers,
    /// which collide across shards — the fleet host merges series only.
    pub fn namespace_series(&mut self, prefix: &str) {
        for s in &mut self.series {
            s.name = format!("{prefix}{}", s.name);
        }
    }
}
