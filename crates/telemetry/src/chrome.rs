//! Chrome trace-event emitter (`chrome://tracing` / Perfetto).
//!
//! Maps the lifecycle stream onto the trace-event JSON format: one
//! *process* per scenario case, one *thread* per core, a complete (`"X"`)
//! event per dispatched service chunk (dispatch → the next lifecycle
//! point), and instant (`"i"`) events for the remaining points. Load
//! `out.json` in a trace viewer to see HoL blocking, steals and
//! preemptions laid out per core over time.

use std::fmt::Write as _;

use crate::trace::{TraceEvent, TraceKind};

/// Incremental builder for one trace file spanning several processes
/// (scenario cases).
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Names process `pid` (one per scenario case).
    pub fn add_process(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Adds one case's merged, time-sorted lifecycle stream under `pid`.
    pub fn add_events(&mut self, pid: u32, events: &[TraceEvent]) {
        // Service chunks need each request's events adjacent: sort by
        // (seq, t) and walk windows, same grouping as the decomposition.
        let mut evs = events.to_vec();
        evs.sort_by_key(|e| (e.seq, e.t_ns, e.kind));
        for (i, e) in evs.iter().enumerate() {
            let ts = e.t_ns as f64 / 1_000.0;
            if e.kind == TraceKind::Dispatch {
                // Complete event: runs until the request's next point.
                let end = evs[i + 1..]
                    .iter()
                    .take_while(|n| n.seq == e.seq)
                    .map(|n| n.t_ns)
                    .next()
                    .unwrap_or(e.t_ns);
                let dur = (end - e.t_ns) as f64 / 1_000.0;
                self.events.push(format!(
                    "{{\"name\":\"req{}\",\"cat\":\"service\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":{pid},\"tid\":{}}}",
                    e.seq, e.core
                ));
            } else {
                self.events.push(format!(
                    "{{\"name\":\"{:?}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{},\"args\":{{\"seq\":{}}}}}",
                    e.kind, e.core, e.seq
                ));
            }
        }
    }

    /// Serializes the accumulated trace as a JSON array.
    pub fn finish(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(out, "{e}");
            out.push_str(if i + 1 < self.events.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_instants_and_service_chunks() {
        let evs = vec![
            TraceEvent {
                t_ns: 0,
                seq: 5,
                core: 2,
                kind: TraceKind::Arrival,
            },
            TraceEvent {
                t_ns: 100,
                seq: 5,
                core: 2,
                kind: TraceKind::Dispatch,
            },
            TraceEvent {
                t_ns: 400,
                seq: 5,
                core: 2,
                kind: TraceKind::Completion,
            },
        ];
        let mut t = ChromeTrace::new();
        t.add_process(1, "ZygOS \"static\"");
        t.add_events(1, &evs);
        let json = t.finish();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\\\"static\\\""), "name is escaped");
        // One X event with the 0.3µs service chunk.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":0.3"));
        // Arrival and completion as instants.
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
    }
}
