//! The zero-alloc lifecycle tracer.
//!
//! One fixed-capacity ring per core; recording is an indexed store plus a
//! head bump. The rings never allocate after construction, so a tracer in
//! the simulator's hot loop (or a live worker's dispatch path) adds a
//! sampling branch and a 16-byte store, nothing else.

/// A request lifecycle point.
///
/// The catalog mirrors the paper's request path: client send, the credit
/// gate's verdict, the home ring, dispatch (local or stolen), preemption
/// and background requeue under a quantum, and the client-observed
/// completion. `StolenDone` marks a stolen request's work finishing on
/// the thief — the interval from there to `Completion` is the remote-TX /
/// IPI return cost the decomposition bills as steal delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceKind {
    /// Client stamped the request and put it on the wire.
    Arrival = 0,
    /// Credit gate admitted it (server edge or client side).
    Admit = 1,
    /// Credit gate shed it; the lifecycle ends here.
    Shed = 2,
    /// Pushed onto its home core's ring.
    Enqueue = 3,
    /// A thief grabbed it from a shuffle queue (dispatch follows after
    /// the steal overhead).
    Steal = 4,
    /// An application chunk started executing.
    Dispatch = 5,
    /// The quantum expired mid-request; the remainder was interrupted.
    Preempt = 6,
    /// The remainder entered the background queue.
    BgRequeue = 7,
    /// A stolen request's work finished on the thief; the result now
    /// rides the remote-syscall batch (or an IPI) back to the home core.
    StolenDone = 8,
    /// The client observed the response (send-to-receive = the measured
    /// latency).
    Completion = 9,
}

/// One trace record: 16 bytes, `Copy`, no payload indirection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in nanoseconds (sim time, or since run start).
    pub t_ns: u64,
    /// Request sequence number (stamped at generation, sampling key).
    pub seq: u32,
    /// Core the event happened on (the home core for client-side points).
    pub core: u16,
    /// Lifecycle point.
    pub kind: TraceKind,
}

/// A fixed-capacity overwrite-oldest ring of [`TraceEvent`]s.
struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next slot to overwrite once full.
    head: usize,
    /// Events overwritten (lost) to wrap-around.
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            // Within the preallocated capacity: push never reallocates.
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in recording order (oldest first).
    fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// Per-core ring-buffer tracer with per-N request sampling.
///
/// `sample_period = 1` records every request; `p > 1` records requests
/// whose sequence number is a multiple of `p` — the whole lifecycle of a
/// sampled request is kept, so decomposition never sees torn records.
pub struct Tracer {
    sample_period: u32,
    rings: Vec<Ring>,
}

impl Tracer {
    /// A tracer for `cores` cores, `per_core_capacity` events per ring.
    pub fn new(cores: usize, per_core_capacity: usize, sample_period: u32) -> Self {
        Tracer {
            sample_period: sample_period.max(1),
            rings: (0..cores.max(1))
                .map(|_| Ring::new(per_core_capacity))
                .collect(),
        }
    }

    /// True when request `seq` is in the sample. Call once per lifecycle
    /// point (cheap) or latch per request — both give the same answer.
    #[inline]
    pub fn sampled(&self, seq: u32) -> bool {
        self.sample_period == 1 || seq.is_multiple_of(self.sample_period)
    }

    /// Records one lifecycle point for request `seq` on `core`,
    /// applying the sampling gate.
    #[inline]
    pub fn record(&mut self, core: u16, seq: u32, kind: TraceKind, t_ns: u64) {
        if !self.sampled(seq) {
            return;
        }
        // Fast path avoids an integer divide: `core` is in range for
        // every well-formed caller; the modulo only guards foreign cores.
        let n = self.rings.len();
        let idx = core as usize;
        let ring = &mut self.rings[if idx < n { idx } else { idx % n }];
        ring.record(TraceEvent {
            t_ns,
            seq,
            core,
            kind,
        });
    }

    /// Total events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// Merges every ring into one deterministic, time-sorted stream.
    ///
    /// Ties (equal `t_ns`) order by `(seq, kind, core)` so the output is
    /// a pure function of the recorded events — the byte-identical-trace
    /// determinism pin rests on this.
    pub fn collect(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.rings.iter().flat_map(|r| r.iter().copied()).collect();
        out.sort_by_key(|e| (e.t_ns, e.seq, e.kind, e.core));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut t = Tracer::new(1, 4, 1);
        for i in 0..6u64 {
            t.record(0, i as u32, TraceKind::Arrival, i * 10);
        }
        assert_eq!(t.dropped(), 2);
        let evs = t.collect();
        assert_eq!(evs.len(), 4);
        // Oldest two were overwritten.
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[3].seq, 5);
    }

    #[test]
    fn sampling_keeps_whole_lifecycles() {
        let mut t = Tracer::new(2, 64, 3);
        for seq in 0..9u32 {
            t.record(0, seq, TraceKind::Arrival, seq as u64 * 100);
            t.record(1, seq, TraceKind::Completion, seq as u64 * 100 + 50);
        }
        let evs = t.collect();
        // Only seq 0, 3, 6 sampled — both events each.
        assert_eq!(evs.len(), 6);
        for e in &evs {
            assert_eq!(e.seq % 3, 0);
        }
    }

    #[test]
    fn collect_is_deterministic_and_time_sorted() {
        let record = || {
            let mut t = Tracer::new(4, 16, 1);
            t.record(3, 1, TraceKind::Dispatch, 500);
            t.record(0, 0, TraceKind::Arrival, 0);
            t.record(2, 1, TraceKind::Arrival, 100);
            t.record(0, 0, TraceKind::Completion, 500);
            t.collect()
        };
        let a = record();
        assert_eq!(a, record());
        for w in a.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
        // Equal timestamps tie-break by seq: seq 0's completion before
        // seq 1's dispatch.
        assert_eq!(a[2].seq, 0);
        assert_eq!(a[3].seq, 1);
    }
}
