//! Tail-latency decomposition: from a lifecycle event stream back to
//! *where the microseconds went*.
//!
//! Each completed request's sojourn is partitioned exactly — the
//! interval between consecutive lifecycle points is billed to the state
//! the *earlier* point entered:
//!
//! | state entered at      | billed to |
//! |-----------------------|-----------|
//! | Arrival/Admit/Enqueue | `queue_ns` (wire ingress + HoL blocking)   |
//! | Steal / StolenDone    | `steal_ns` (shuffle-op + remote-TX / IPI)  |
//! | Dispatch              | `service_ns` (incl. TX + egress wire)      |
//! | Preempt / BgRequeue   | `preempt_ns` (background-queue wait)       |
//!
//! Because every nanosecond between `Arrival` and `Completion` lands in
//! exactly one bucket, `queue + service + steal + preempt == total` *by
//! construction* — the "components sum to the measured p99" acceptance
//! bound only has to absorb histogram bucketing (~0.1%), never
//! attribution error.

use crate::trace::{TraceEvent, TraceKind};

/// One request's sojourn, exactly partitioned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Decomposition {
    /// End-to-end sojourn: client send → client receive.
    pub total_ns: u64,
    /// Wire ingress + time queued behind other work (HoL blocking).
    pub queue_ns: u64,
    /// Application execution, response TX and egress wire time.
    pub service_ns: u64,
    /// Steal overhead: shuffle-queue grab plus the stolen result's
    /// remote-syscall-batch / IPI ride back to the home core.
    pub steal_ns: u64,
    /// Preemption-induced delay: time parked in the background queue
    /// between an interrupted chunk and its next dispatch.
    pub preempt_ns: u64,
}

impl Decomposition {
    /// Sum of the four components — equal to `total_ns` by construction.
    pub fn sum_ns(&self) -> u64 {
        self.queue_ns + self.service_ns + self.steal_ns + self.preempt_ns
    }

    /// A component-wise µs view `(queue, service, steal, preempt)`.
    pub fn as_us(&self) -> (f64, f64, f64, f64) {
        (
            self.queue_ns as f64 / 1_000.0,
            self.service_ns as f64 / 1_000.0,
            self.steal_ns as f64 / 1_000.0,
            self.preempt_ns as f64 / 1_000.0,
        )
    }
}

/// Bucket an interval is billed to, by the state its start entered.
fn bucket(kind: TraceKind) -> fn(&mut Decomposition) -> &mut u64 {
    match kind {
        TraceKind::Arrival | TraceKind::Admit | TraceKind::Enqueue => |d| &mut d.queue_ns,
        TraceKind::Steal | TraceKind::StolenDone => |d| &mut d.steal_ns,
        TraceKind::Dispatch => |d| &mut d.service_ns,
        TraceKind::Preempt | TraceKind::BgRequeue => |d| &mut d.preempt_ns,
        // Terminal states start no interval; unreachable in the walk.
        TraceKind::Shed | TraceKind::Completion => |d| &mut d.queue_ns,
    }
}

/// Decomposes every complete lifecycle in `events` (any order; shed and
/// torn lifecycles — no `Arrival`, or no `Completion` — are skipped).
///
/// Output order follows each request's completion, i.e. sorting the
/// input by time yields completion order — deterministic for a
/// deterministic host.
pub fn decompose(events: &[TraceEvent]) -> Vec<Decomposition> {
    // Group by seq: sort a copy by (seq, t, kind) and walk runs.
    let mut evs = events.to_vec();
    evs.sort_by_key(|e| (e.seq, e.t_ns, e.kind));
    let mut tagged: Vec<(u64, Decomposition)> = Vec::new();
    let mut i = 0;
    while i < evs.len() {
        let j = (i..evs.len())
            .find(|&k| evs[k].seq != evs[i].seq)
            .unwrap_or(evs.len());
        if let Some(d) = decompose_one(&evs[i..j]) {
            tagged.push((evs[j - 1].t_ns, d));
        }
        i = j;
    }
    // Completion order: the report's decomposition must not depend on
    // seq assignment order.
    tagged.sort_by_key(|&(t, _)| t);
    tagged.into_iter().map(|(_, d)| d).collect()
}

/// Decomposes one request's (time-sorted) lifecycle; `None` when torn
/// or shed.
fn decompose_one(evs: &[TraceEvent]) -> Option<Decomposition> {
    if evs.first()?.kind != TraceKind::Arrival || evs.last()?.kind != TraceKind::Completion {
        return None;
    }
    if evs.iter().any(|e| e.kind == TraceKind::Shed) {
        return None;
    }
    let mut d = Decomposition {
        total_ns: evs.last()?.t_ns - evs.first()?.t_ns,
        ..Decomposition::default()
    };
    for w in evs.windows(2) {
        *bucket(w[0].kind)(&mut d) += w[1].t_ns - w[0].t_ns;
    }
    debug_assert_eq!(d.sum_ns(), d.total_ns, "decomposition must partition");
    Some(d)
}

/// The decomposition of the request at quantile `q` by total sojourn.
///
/// Rank rule mirrors `zygos_sim::stats::LatencyHistogram`
/// (`ceil(q·n)` clamped to `[1, n]`), so against a histogram quantile of
/// the same population the totals differ only by bucket precision
/// (~0.1%). Sorts in place; returns `None` when empty.
pub fn decomposition_at_quantile(decomps: &mut [Decomposition], q: f64) -> Option<Decomposition> {
    if decomps.is_empty() {
        return None;
    }
    decomps.sort_by_key(|d| d.total_ns);
    let n = decomps.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    Some(decomps[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u32, core: u16, kind: TraceKind, t_ns: u64) -> TraceEvent {
        TraceEvent {
            t_ns,
            seq,
            core,
            kind,
        }
    }

    /// The contrived two-flow HoL scenario: one core, a long job (1000ns
    /// service) dispatched first, a short job (100ns) arriving behind
    /// it. The short job's queueing delay is analytically the long job's
    /// residual service — the decomposition must attribute exactly that.
    #[test]
    fn hol_blocking_is_attributed_to_queueing() {
        let evs = vec![
            // Long job: arrives, dispatches immediately, runs 1000ns.
            ev(0, 0, TraceKind::Arrival, 0),
            ev(0, 0, TraceKind::Enqueue, 0),
            ev(0, 0, TraceKind::Dispatch, 0),
            ev(0, 0, TraceKind::Completion, 1000),
            // Short job: arrives at 100, must wait for the head of line.
            ev(1, 0, TraceKind::Arrival, 100),
            ev(1, 0, TraceKind::Enqueue, 100),
            ev(1, 0, TraceKind::Dispatch, 1000),
            ev(1, 0, TraceKind::Completion, 1100),
        ];
        let d = decompose(&evs);
        assert_eq!(d.len(), 2);
        // Long job: pure service.
        assert_eq!(d[0].queue_ns, 0);
        assert_eq!(d[0].service_ns, 1000);
        // Short job: 900ns HoL (the long job's residual) + 100ns service.
        assert_eq!(d[1].total_ns, 1000);
        assert_eq!(d[1].queue_ns, 900);
        assert_eq!(d[1].service_ns, 100);
        assert_eq!(d[1].sum_ns(), d[1].total_ns);
    }

    #[test]
    fn steal_and_preempt_intervals_land_in_their_buckets() {
        let evs = vec![
            ev(7, 0, TraceKind::Arrival, 0),
            ev(7, 0, TraceKind::Enqueue, 200),
            // Stolen at 300, dispatch on the thief at 350 (50ns grab).
            ev(7, 1, TraceKind::Steal, 300),
            ev(7, 1, TraceKind::Dispatch, 350),
            // Quantum expires at 450; remainder requeued, redispatched.
            ev(7, 1, TraceKind::Preempt, 450),
            ev(7, 1, TraceKind::BgRequeue, 450),
            ev(7, 1, TraceKind::Dispatch, 600),
            // Work done on the thief at 700; home TX + wire until 780.
            ev(7, 1, TraceKind::StolenDone, 700),
            ev(7, 0, TraceKind::Completion, 780),
        ];
        let d = decompose(&evs);
        assert_eq!(d.len(), 1);
        let d = d[0];
        assert_eq!(d.total_ns, 780);
        assert_eq!(d.queue_ns, 300); // arrival→steal
        assert_eq!(d.steal_ns, 50 + 80); // grab + return ride
        assert_eq!(d.service_ns, 100 + 100); // two dispatched chunks
        assert_eq!(d.preempt_ns, 150); // bg-queue wait
        assert_eq!(d.sum_ns(), d.total_ns);
    }

    #[test]
    fn shed_and_torn_lifecycles_are_skipped() {
        let evs = vec![
            ev(1, 0, TraceKind::Arrival, 0),
            ev(1, 0, TraceKind::Shed, 10),
            ev(2, 0, TraceKind::Dispatch, 0), // no arrival (ring wrap)
            ev(2, 0, TraceKind::Completion, 50),
            ev(3, 0, TraceKind::Arrival, 0), // never completed
            ev(3, 0, TraceKind::Dispatch, 20),
        ];
        assert!(decompose(&evs).is_empty());
    }

    #[test]
    fn quantile_rank_matches_histogram_rule() {
        let mut ds: Vec<Decomposition> = (1..=100u64)
            .map(|i| Decomposition {
                total_ns: i * 1_000,
                service_ns: i * 1_000,
                ..Decomposition::default()
            })
            .collect();
        // ceil(0.99·100) = 99 ⇒ the 99th order statistic.
        let p99 = decomposition_at_quantile(&mut ds, 0.99).unwrap();
        assert_eq!(p99.total_ns, 99_000);
        let p50 = decomposition_at_quantile(&mut ds, 0.50).unwrap();
        assert_eq!(p50.total_ns, 50_000);
        assert!(decomposition_at_quantile(&mut [], 0.99).is_none());
    }
}
