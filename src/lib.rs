//! # ZygOS — work-conserving scheduling for µs-scale networked tasks
//!
//! A from-scratch Rust reproduction of *ZygOS: Achieving Low Tail Latency
//! for Microsecond-scale Networked Tasks* (Prekas, Kogias, Bugnion —
//! SOSP 2017).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! * [`sim`] — discrete-event simulation kernel, distributions and the four
//!   idealized queueing models of the paper's §2.3.
//! * [`net`] — the network substrate: packets, RSS, NIC descriptor rings,
//!   TCP-like framing, and the calibrated cost model.
//! * [`core`] — the paper's contribution as reusable machinery: shuffle
//!   queues, per-connection state machines, idle-loop policy, IPI doorbells.
//! * [`sysim`] — the full-system simulator with the ZygOS, IX and Linux
//!   system models used to regenerate every figure, plus the
//!   `SystemKind::Elastic` model combining them with the `sched` control
//!   plane.
//! * [`sched`] — the **policy plane**: every dispatch and allocation
//!   decision in the workspace, written once. A `DispatchPolicy` trait
//!   (rung-ladder dispatch, steal/preempt/background-order decisions)
//!   drives both the simulator's system models and the live runtime's
//!   workers; an `AllocPolicy` trait (SLO-margin `SloController` by
//!   default, the `util + β·√util` rule as `UtilizationPolicy`) staffs
//!   the elastic data plane; Breakwater-style credits
//!   (`CreditPool`/`CreditGate`) shed load under overload — per-tenant
//!   SLO-derived AIMD targets, weighted fair shedding (loosest class
//!   first), and sender-side credit grants piggybacked on response
//!   headers. Knobs: `SysConfig::{preemption_quantum_us,
//!   background_order, admission, admission_mode, slo}`, `ElasticKnobs`,
//!   `SchedulerKind::Elastic` and `RuntimeConfig::{admission, slo,
//!   client_credits}`.
//! * [`silo`] — a Silo-style OCC in-memory transactional database with a
//!   complete TPC-C implementation.
//! * [`kv`] — a memcached-like key-value store with USR/ETC workloads.
//! * [`load`] — open-loop Poisson load generation, SLO tooling
//!   (`TenantSlos`: per-class bounds, credit targets, shed order) and
//!   reject-aware retry policies.
//! * [`runtime`] — a live multithreaded implementation of the ZygOS
//!   scheduler (plus IX / Linux baselines) over a loopback transport,
//!   running the same closed SLO loop as the simulator from a measured
//!   (ingress-stamped) latency signal.
//! * [`lab`] — the **scenario plane**: one declarative experiment API
//!   over every host. A `Scenario` (workload incl. trace-replay
//!   arrivals, cases over sim/live/model hosts, policy, claims) is the
//!   single way experiments are described; `lab run scenarios/*.toml
//!   --smoke --check` is the regression gate, and every fig binary is a
//!   thin wrapper over a scenario.
//!
//! See `docs/ARCHITECTURE.md` for the crate map, the policy plane and
//! the end-to-end SLO loop; `docs/SCENARIOS.md` for the scenario spec
//! format and baseline-check workflow; `docs/FIGURES.md` maps every
//! paper figure to its reproduction binary and expected numbers;
//! `docs/OFFLINE_BUILDS.md` explains the offline dependency shims.

pub use zygos_core as core;
pub use zygos_kv as kv;
pub use zygos_lab as lab;
pub use zygos_load as load;
pub use zygos_net as net;
pub use zygos_runtime as runtime;
pub use zygos_sched as sched;
pub use zygos_silo as silo;
pub use zygos_sim as sim;
pub use zygos_sysim as sysim;
