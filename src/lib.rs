//! # ZygOS — work-conserving scheduling for µs-scale networked tasks
//!
//! A from-scratch Rust reproduction of *ZygOS: Achieving Low Tail Latency
//! for Microsecond-scale Networked Tasks* (Prekas, Kogias, Bugnion —
//! SOSP 2017).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! * [`sim`] — discrete-event simulation kernel, distributions and the four
//!   idealized queueing models of the paper's §2.3.
//! * [`net`] — the network substrate: packets, RSS, NIC descriptor rings,
//!   TCP-like framing, and the calibrated cost model.
//! * [`core`] — the paper's contribution as reusable machinery: shuffle
//!   queues, per-connection state machines, idle-loop policy, IPI doorbells.
//! * [`sysim`] — the full-system simulator with the ZygOS, IX and Linux
//!   system models used to regenerate every figure, plus the
//!   `SystemKind::Elastic` model combining them with the `sched` control
//!   plane.
//! * [`sched`] — the **policy plane**: every dispatch and allocation
//!   decision in the workspace, written once. A `DispatchPolicy` trait
//!   (rung-ladder dispatch, steal/preempt/background-order decisions)
//!   drives both the simulator's system models and the live runtime's
//!   workers; an `AllocPolicy` trait (SLO-margin `SloController` by
//!   default, the `util + β·√util` rule as `UtilizationPolicy`) staffs
//!   the elastic data plane; a Breakwater-style `CreditPool` sheds load
//!   at the edge under overload. Knobs:
//!   `SysConfig::{preemption_quantum_us, background_order, admission,
//!   slo}`, `ElasticKnobs`, `SchedulerKind::Elastic` and
//!   `RuntimeConfig::admission`.
//! * [`silo`] — a Silo-style OCC in-memory transactional database with a
//!   complete TPC-C implementation.
//! * [`kv`] — a memcached-like key-value store with USR/ETC workloads.
//! * [`load`] — open-loop Poisson load generation and SLO tooling.
//! * [`runtime`] — a live multithreaded implementation of the ZygOS
//!   scheduler (plus IX / Linux baselines) over a loopback transport.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use zygos_core as core;
pub use zygos_kv as kv;
pub use zygos_load as load;
pub use zygos_net as net;
pub use zygos_runtime as runtime;
pub use zygos_sched as sched;
pub use zygos_silo as silo;
pub use zygos_sim as sim;
pub use zygos_sysim as sysim;
