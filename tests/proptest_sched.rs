//! Property-based tests of the elastic core allocator (`zygos-sched`):
//! conservation, bounds, and hysteresis under adversarial and sinusoidal
//! load traces.

use proptest::prelude::*;

use zygos::sched::{AllocatorConfig, CoreAllocator, Decision, LoadSignal};

fn cfg(max_cores: usize, min_cores: usize) -> AllocatorConfig {
    AllocatorConfig {
        min_cores,
        max_cores,
        ..AllocatorConfig::paper(max_cores)
    }
}

proptest! {
    /// Core-count conservation: every decision's size equals the change in
    /// `active()`, and `active()` never leaves `[min_cores, max_cores]`,
    /// for arbitrary signal sequences.
    #[test]
    fn core_count_is_conserved_and_bounded(
        max in 2usize..64,
        min_raw in 1usize..64,
        trace in proptest::collection::vec((0u8..65, 0u16..2_000), 1..400),
    ) {
        let min = min_raw.min(max);
        let mut a = CoreAllocator::new(cfg(max, min));
        prop_assert_eq!(a.active(), max, "starts fully granted");
        for (busy, backlog) in trace {
            let before = a.active();
            let d = a.observe(LoadSignal {
                busy_cores: (busy as f64).min(before as f64),
                backlog: backlog as usize,
            });
            let after = a.active();
            match d {
                Decision::Grant(k) => {
                    prop_assert!(k > 0);
                    prop_assert_eq!(after, before + k);
                }
                Decision::Revoke(k) => {
                    prop_assert!(k > 0);
                    prop_assert_eq!(after, before - k);
                }
                Decision::Hold => prop_assert_eq!(after, before),
            }
            prop_assert!((min..=max).contains(&after), "active {} outside [{min}, {max}]", after);
            prop_assert_eq!(a.parked(), max - after);
        }
    }

    /// Hysteresis bounds reallocation frequency: over any trace of `n`
    /// ticks the allocator changes its grant at most
    /// `n / (cooldown + min(grant_after, revoke_after)) + 1` times — even
    /// under a sinusoidal load that crosses the thresholds every period.
    #[test]
    fn sinusoidal_load_cannot_thrash(
        max in 4usize..33,
        period_ticks in 4u32..200,
        amplitude in 0.5f64..1.0,
        phase in 0.0f64..6.25,
        n in 100u32..1_500,
    ) {
        let c = cfg(max, 1);
        let mut a = CoreAllocator::new(c);
        let mut changes = 0u32;
        for t in 0..n {
            let x = phase + t as f64 / period_ticks as f64 * std::f64::consts::TAU;
            // Demand swings between ~0 and ~amplitude·max cores.
            let demand = amplitude * max as f64 * 0.5 * (1.0 + x.sin());
            let busy = demand.min(a.active() as f64);
            let backlog = (demand - busy).max(0.0) as usize;
            if a.observe(LoadSignal { busy_cores: busy, backlog }) != Decision::Hold {
                changes += 1;
            }
        }
        let min_gap = c.tuning.cooldown + c.tuning.grant_after.min(c.tuning.revoke_after);
        let bound = n / min_gap + 1;
        prop_assert!(
            changes <= bound,
            "{changes} changes over {n} ticks exceeds hysteresis bound {bound}"
        );
    }

    /// Sustained constant load converges: after enough ticks at a fixed
    /// signal the allocator stops changing its mind (no limit cycles on a
    /// flat input).
    #[test]
    fn constant_load_settles(
        max in 4usize..33,
        busy_frac in 0.0f64..1.0,
    ) {
        let mut a = CoreAllocator::new(cfg(max, 1));
        let busy = busy_frac * max as f64;
        for _ in 0..200 {
            a.observe(LoadSignal { busy_cores: busy.min(a.active() as f64), backlog: 0 });
        }
        let settled = a.active();
        for _ in 0..100 {
            let d = a.observe(LoadSignal { busy_cores: busy.min(a.active() as f64), backlog: 0 });
            prop_assert_eq!(d, Decision::Hold, "still changing after 200 warm ticks");
        }
        prop_assert_eq!(a.active(), settled);
    }
}
