//! The end-to-end SLO loop in the **live runtime**: ingress-stamped
//! sojourns → per-tenant windows → worker 0's control tick → the same
//! `SloController` object the simulator drives.
//!
//! The headline acceptance test induces a latency step (the handler
//! suddenly becomes 10× slower than the SLO bound) at *low utilization*
//! — a regime where the PR-1 utilization rule would never grant (busy ≈ 1
//! of 4 cores, no backlog) — and asserts the fleet staffs back up anyway:
//! only the measured p99-vs-bound ratio can be driving it, i.e. the PR-2
//! `slo_ratio: None` stub is demonstrably gone. A companion test runs the
//! simulator's elastic model through the same shape of experiment to pin
//! that both hosts react the same way through the shared policy object.
//!
//! Timing notes: these tests run a real multithreaded server on a shared
//! (possibly 1-CPU) host, so every bound is directional with generous
//! deadlines — they assert *reaction*, never absolute latencies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use zygos::load::slo::{Slo, TenantSlos};
use zygos::net::flow::ConnId;
use zygos::net::packet::RpcMessage;
use zygos::runtime::{RuntimeConfig, Server};
use zygos::sim::dist::ServiceDist;
use zygos::sysim::{run_system, SysConfig, SystemKind};

/// The SLO bound the live test staffs against (µs).
const BOUND_US: f64 = 200.0;

/// Drives one closed-loop request and waits for its response.
fn roundtrip(client: &zygos::runtime::ClientPort, conn: u32, id: u64) {
    client.send(ConnId(conn), &RpcMessage::new(1, id, Bytes::new()));
    client
        .recv_timeout(Duration::from_secs(30))
        .expect("response");
}

#[test]
fn slo_controller_staffs_up_on_an_induced_latency_step() {
    // Handler delay is adjustable at runtime: the latency step.
    let delay_us = Arc::new(AtomicU64::new(20));
    let handler_delay = Arc::clone(&delay_us);
    let app = move |_c: ConnId, req: &RpcMessage| {
        let d = handler_delay.load(Ordering::Relaxed);
        if d > 0 {
            std::thread::sleep(Duration::from_micros(d));
        }
        RpcMessage::new(0, req.header.req_id, Bytes::new())
    };
    let cfg = RuntimeConfig::elastic(4, 16).with_slo(TenantSlos::uniform(Slo::p99(BOUND_US)));
    let (server, client) = Server::start(cfg, Arc::new(app));
    assert_eq!(server.active_cores(), Some(4), "starts fully granted");

    // Phase 1 — healthy: fast handler, light closed-loop trickle. The
    // margin is wide, so the controller parks toward the floor.
    let mut id = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    let parked_at = loop {
        roundtrip(&client, (id % 16) as u32, id);
        id += 1;
        std::thread::sleep(Duration::from_millis(1));
        let active = server.active_cores().expect("elastic gauge");
        if active < 4 {
            break active;
        }
        assert!(
            Instant::now() < deadline,
            "controller never parked under a wide margin"
        );
    };
    assert!(parked_at < 4);

    // Phase 2 — the step: the handler becomes 10× slower than the bound.
    // Utilization stays low (one request in flight, no backlog), so the
    // utilization rule would hold parked; the measured ratio must grant.
    delay_us.store((BOUND_US * 10.0) as u64, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        roundtrip(&client, (id % 16) as u32, id);
        id += 1;
        let active = server.active_cores().expect("elastic gauge");
        if active == 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "SLO breach never staffed the fleet back up (active = {active})"
        );
    }
    let ratio = server
        .slo_ratio()
        .expect("a measured ratio must be published");
    assert!(
        ratio > 1.0,
        "the published ratio must show the breach: {ratio}"
    );

    // The registry holds the whole staffing-signal *trajectory*, not a
    // read-once gauge: the ratio series must show both regimes (healthy
    // margin below 1, breach above 1), and the active-core series must
    // record the park and the re-staff the gauges above only implied.
    let ratio_series = server
        .metric_series("slo_ratio")
        .expect("slo controller registers its series");
    assert!(
        ratio_series.points.iter().any(|&(_, r)| r < 1.0),
        "phase 1's healthy margin must be in the trajectory"
    );
    assert!(
        ratio_series.points.iter().any(|&(_, r)| r > 1.0),
        "phase 2's breach must be in the trajectory"
    );
    let active_series = server
        .metric_series("active_cores")
        .expect("elastic mode registers its series");
    assert!(
        active_series.points.iter().any(|&(_, a)| a < 4.0),
        "the park must be in the trajectory"
    );
    assert_eq!(
        active_series.last(),
        Some(4.0),
        "the re-staffed fleet is the latest point"
    );
    // Reading twice returns the same snapshot — the fix over the old
    // harvest-and-clear behavior.
    let again = server.metric_series("slo_ratio").expect("still there");
    assert!(again.points.len() >= ratio_series.points.len());
    server.shutdown();
}

#[test]
fn simulator_elastic_reacts_to_the_same_slo_signal_shape() {
    // The simulator-side mirror of the test above, through the same
    // SloController: at identical low load, a tight SLO holds more cores
    // granted than no SLO at all. (Deterministic, exact regression.)
    let mut cfg = SysConfig::paper(
        SystemKind::Elastic { min_cores: 2 },
        ServiceDist::exponential_us(10.0),
        0.2,
    );
    cfg.requests = 20_000;
    cfg.warmup = 4_000;
    cfg.slo = Some(TenantSlos::uniform(Slo::p99(55.0))); // barely above the no-load p99
    let strict = run_system(&cfg);
    cfg.slo = None;
    let unconstrained = run_system(&cfg);
    assert!(
        strict.avg_active_cores > unconstrained.avg_active_cores,
        "measured SLO pressure must hold cores: {:.2} vs {:.2}",
        strict.avg_active_cores,
        unconstrained.avg_active_cores
    );
}

#[test]
fn slo_driven_admission_tracks_the_tenant_bound_not_a_constant() {
    // Two runtimes differing only in their SLO bound, same slow handler,
    // same burst: the tighter bound must shed more — per-tenant targets,
    // not a fixed µs constant, are driving the AIMD.
    let run_with_bound = |bound_us: f64| {
        let slow = |_c: ConnId, req: &RpcMessage| {
            std::thread::sleep(Duration::from_micros(300));
            RpcMessage::new(0, req.header.req_id, Bytes::new())
        };
        let cfg = RuntimeConfig::zygos(2, 16)
            .with_admission(zygos::sched::CreditConfig {
                min_credits: 2,
                max_credits: 256,
                initial_credits: 64,
                additive: 4,
                md_factor: 0.3,
                target: 1.0, // Ratio-space: per-class targets come from the SLO.
            })
            .with_slo(TenantSlos::uniform(Slo::p99(bound_us)));
        let (server, client) = Server::start(cfg, Arc::new(slow));
        let n = 3_000u64;
        for id in 0..n {
            client.send(
                ConnId((id % 16) as u32),
                &RpcMessage::new(1, id, Bytes::new()),
            );
        }
        for _ in 0..n {
            client
                .recv_timeout(Duration::from_secs(30))
                .expect("answered");
        }
        let (_, rejected, _) = server.admission_stats().expect("gate armed");
        server.shutdown();
        rejected
    };
    // 300µs sojourns: far past a 100µs bound, comfortably inside 100ms.
    let strict_sheds = run_with_bound(100.0);
    let loose_sheds = run_with_bound(100_000.0);
    assert!(
        strict_sheds > loose_sheds,
        "tight bound must shed more: strict {strict_sheds} vs loose {loose_sheds}"
    );
}
