//! Scenario-plane acceptance: the TOML specs committed under
//! `scenarios/` parse, run, and round-trip; and the lab's lowering
//! produces exactly the configuration the hand-written fig13 setup
//! produced before the migration (sim-vs-live parity starts from
//! config parity).

use zygos::lab::{scenario_from_toml, HostSpec, Report, Scenario, SimHost};
use zygos::sched::BackgroundOrder;
use zygos::sim::dist::ServiceDist;
use zygos::sysim::{AdmissionMode, ArrivalSpec, SysConfig, SystemKind};

const FIG13_TOML: &str = include_str!("../scenarios/fig13_overload.toml");
const PARITY_TOML: &str = include_str!("../scenarios/parity_echo.toml");
const DIURNAL_TOML: &str = include_str!("../scenarios/fig12_diurnal.toml");
const FLEET_TAIL_TOML: &str = include_str!("../scenarios/fleet_tail.toml");
const FLEET_REBALANCE_TOML: &str = include_str!("../scenarios/fleet_rebalance.toml");
const RETRY_STORM_TOML: &str = include_str!("../scenarios/retry_storm.toml");
const METASTABLE_TOML: &str = include_str!("../scenarios/metastable_recovery.toml");
const SCATTER_GATHER_TOML: &str = include_str!("../scenarios/fleet_scatter_gather.toml");

/// Shrinks a parsed scenario to test size without touching its meaning.
fn shrink(mut sc: Scenario, loads: Vec<f64>, requests: u64, warmup: u64) -> Scenario {
    sc.scale.smoke_requests = requests;
    sc.scale.smoke_warmup = warmup;
    sc.scale.smoke_loads = Some(loads);
    sc
}

#[test]
fn committed_specs_parse() {
    for (name, text) in [
        ("fig13_overload", FIG13_TOML),
        ("parity_echo", PARITY_TOML),
        ("fig12_diurnal", DIURNAL_TOML),
        ("fleet_tail", FLEET_TAIL_TOML),
        ("fleet_rebalance", FLEET_REBALANCE_TOML),
        ("retry_storm", RETRY_STORM_TOML),
        ("metastable_recovery", METASTABLE_TOML),
        ("fleet_scatter_gather", SCATTER_GATHER_TOML),
    ] {
        let sc = scenario_from_toml(text)
            .unwrap_or_else(|e| panic!("scenarios/{name}.toml must parse: {e}"));
        assert!(!sc.cases.is_empty());
    }
}

#[test]
fn toml_spec_runs_and_report_json_round_trips() {
    // TOML → Scenario → run (smoke-sized) → JSON → parse-back equality.
    let sc = shrink(
        scenario_from_toml(FIG13_TOML).expect("parses"),
        vec![1.2],
        1_500,
        300,
    );
    let report = zygos::lab::run_scenario(&sc, true).expect("runs");
    assert_eq!(report.series.len(), 5, "five fig13 cases");
    let json = report.to_json();
    let back = Report::from_json(&json).expect("round trips");
    assert_eq!(back, report, "Report → JSON → Report must be identity");
    // And the run is reproducible (deterministic hosts, fixed seed).
    let again = zygos::lab::run_scenario(&sc, true).expect("runs");
    assert_eq!(again, report);
}

#[test]
fn retry_storm_scenario_populates_the_retry_plane() {
    // A shrunk run of the committed storm spec: the closed-loop retry
    // metrics must land in the report (and round-trip), and the naive
    // re-issue twin must already look worse than the backoff twin.
    // Large enough for the naive twin's queue to cross the 400us client
    // timeout and start storming (a few hundred microseconds of virtual
    // time is not): ~3ms of overload at this scale.
    let sc = shrink(
        scenario_from_toml(RETRY_STORM_TOML).expect("parses"),
        vec![1.4],
        6_000,
        1_200,
    );
    let report = zygos::lab::run_scenario(&sc, true).expect("runs");
    let back = Report::from_json(&report.to_json()).expect("round trips");
    assert_eq!(back, report);
    let point = |label: &str| {
        &report
            .series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("case {label} in report"))
            .points[0]
    };
    let (backoff, drop, naive) = (point("backoff"), point("drop"), point("naive"));
    assert!(backoff.retry_rate > 0.0, "rejections must feed retries");
    assert!(
        naive.retry_rate > backoff.retry_rate,
        "naive {} vs backoff {}",
        naive.retry_rate,
        backoff.retry_rate
    );
    assert_eq!(drop.retry_rate, 0.0, "the drop twin never re-issues");
    assert!(
        naive.p99_us > backoff.p99_us,
        "the storm must hurt: naive {} vs backoff {}",
        naive.p99_us,
        backoff.p99_us
    );
    for p in [backoff, drop, naive] {
        assert!((0.0..=1.0).contains(&p.goodput), "goodput {}", p.goodput);
    }
}

/// The pre-migration fig13 construction, copied verbatim from the old
/// hand-written setup: `SysConfig::paper` + the figure's credit config.
fn old_fig13_credits_config(load: f64, requests: u64, warmup: u64) -> SysConfig {
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), load);
    cfg.requests = requests;
    cfg.warmup = warmup;
    cfg.admission = Some(zygos_bench::fig13::credit_config(cfg.cores));
    cfg
}

#[test]
fn fig13_scenario_lowers_to_the_premigration_config() {
    // The committed TOML and the programmatic twin must both lower the
    // "ZygOS (credits)" case to exactly the config the hand-written
    // fig13 setup produced before the migration.
    let toml_sc = scenario_from_toml(FIG13_TOML).expect("parses");
    let (requests, warmup) = toml_sc.scale.window(false);
    let old = old_fig13_credits_config(1.2, requests, warmup);
    {
        let sc = &toml_sc;
        let case = sc.case("ZygOS (credits)").expect("case present");
        let new = zygos::lab::sys_config_for(sc, case, 1.2, false).expect("lowers");
        assert_eq!(new.system, old.system);
        assert_eq!(new.cores, old.cores);
        assert_eq!(new.conns, old.conns);
        assert_eq!(new.load, old.load);
        assert_eq!(new.requests, old.requests);
        assert_eq!(new.warmup, old.warmup);
        assert_eq!(new.seed, old.seed);
        assert_eq!(new.rx_batch, old.rx_batch);
        assert_eq!(new.preemption_quantum_us, old.preemption_quantum_us);
        assert_eq!(new.background_order, BackgroundOrder::Fcfs);
        assert_eq!(new.randomize_steal_order, old.randomize_steal_order);
        assert_eq!(new.admission_mode, AdmissionMode::ServerEdge);
        assert!(matches!(new.arrivals, ArrivalSpec::Poisson));
        let (na, oa) = (new.admission.expect("gated"), old.admission.expect("gated"));
        assert_eq!(na.min_credits, oa.min_credits);
        assert_eq!(na.max_credits, oa.max_credits);
        assert_eq!(na.initial_credits, oa.initial_credits);
        assert_eq!(na.additive, oa.additive);
        assert_eq!(na.md_factor, oa.md_factor);
        assert_eq!(na.target, oa.target);
    }
    // The programmatic twin used by the fig13 binary agrees with the
    // committed TOML case for case.
    let prog = zygos_bench::fig13::scenario(&zygos_bench::Scale::full(), false);
    assert_eq!(
        prog.cases
            .iter()
            .map(|c| c.label.clone())
            .collect::<Vec<_>>(),
        toml_sc
            .cases
            .iter()
            .map(|c| c.label.clone())
            .collect::<Vec<_>>()
    );
    for (a, b) in prog.cases.iter().zip(&toml_sc.cases) {
        assert_eq!(a.host, b.host, "case {}", a.label);
    }
}

#[test]
fn same_spec_runs_on_sim_and_live_with_identical_schema() {
    // The parity scenario has one sim case and one live case; both must
    // execute from the same TOML and emit schema-identical series.
    let sc = shrink(
        scenario_from_toml(PARITY_TOML).expect("parses"),
        vec![0.2],
        250,
        40,
    );
    assert!(matches!(sc.cases[0].host, HostSpec::Sim(SimHost::Zygos)));
    assert!(matches!(sc.cases[1].host, HostSpec::Live(_)));
    let report = zygos::lab::run_scenario(&sc, true).expect("runs on both hosts");
    let json = report.to_json();
    let back = Report::from_json(&json).expect("parses");
    assert_eq!(back, report);
    let (sim, live) = (&report.series[0], &report.series[1]);
    assert!(sim.deterministic);
    assert!(!live.deterministic);
    assert_eq!(sim.points.len(), live.points.len(), "same grid");
    // Both hosts measure the same workload: a 200µs deterministic
    // service floors both p99s.
    assert!(
        sim.points[0].p99_us >= 200.0,
        "sim p99 {}",
        sim.points[0].p99_us
    );
    assert!(
        live.points[0].p99_us >= 200.0,
        "live p99 {}",
        live.points[0].p99_us
    );
    // Schema-identical: the JSON objects expose the same keys for both.
    for key in [
        "\"p99_us\"",
        "\"mrps\"",
        "\"shed_fraction\"",
        "\"core_seconds\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            sim.points.len() + live.points.len(),
            "{key} appears once per point on every host"
        );
    }
}

#[test]
fn diurnal_scenario_replays_the_bundled_trace() {
    let sc = shrink(
        scenario_from_toml(DIURNAL_TOML).expect("parses"),
        vec![0.25],
        2_000,
        400,
    );
    assert!(matches!(sc.workload.arrivals, ArrivalSpec::Trace(_)));
    let report = zygos::lab::run_scenario(&sc, true).expect("runs");
    let elastic = report
        .series
        .iter()
        .find(|s| s.label.contains("elastic"))
        .expect("elastic case");
    assert!(
        elastic.points[0].avg_cores < 16.0,
        "the trough of the trace must park cores (granted {:.2})",
        elastic.points[0].avg_cores
    );
}
