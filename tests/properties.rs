//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use zygos::net::flow::FiveTuple;
use zygos::net::packet::RpcMessage;
use zygos::net::rss::Rss;
use zygos::net::wire::Framer;
use zygos::sim::stats::LatencyHistogram;

proptest! {
    /// The framer reassembles any message sequence under any segmentation.
    #[test]
    fn framer_handles_arbitrary_segmentation(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..20),
        cuts in proptest::collection::vec(1usize..64, 0..64),
    ) {
        let msgs: Vec<RpcMessage> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| RpcMessage::new(1, i as u64, bytes::Bytes::from(b.clone())))
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.to_bytes());
        }
        // Segment the stream at the proposed cut sizes (cycled).
        let mut framer = Framer::new();
        let mut out = Vec::new();
        let mut off = 0;
        let mut cut_idx = 0;
        while off < wire.len() {
            let step = if cuts.is_empty() {
                wire.len()
            } else {
                cuts[cut_idx % cuts.len()]
            };
            cut_idx += 1;
            let end = (off + step).min(wire.len());
            framer.feed(&wire[off..end]).unwrap();
            out.extend(framer.drain().unwrap());
            off = end;
        }
        prop_assert_eq!(out.len(), msgs.len());
        for (got, want) in out.iter().zip(&msgs) {
            prop_assert_eq!(got.header.req_id, want.header.req_id);
            prop_assert_eq!(&got.body[..], &want.body[..]);
        }
    }

    /// Histogram quantiles are within bucket precision of exact order
    /// statistics, for arbitrary value sets.
    #[test]
    fn histogram_quantiles_match_exact(
        mut values in proptest::collection::vec(0u64..1_000_000_000, 10..500),
        q in 0.01f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record_nanos(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let est = h.value_at_quantile(q);
        prop_assert!(est >= exact, "q={}: est {} < exact {}", q, est, exact);
        prop_assert!(
            est as f64 <= exact as f64 * 1.002 + 2.0,
            "q={}: est {} too far above exact {}", q, est, exact
        );
    }

    /// Histogram merge is equivalent to recording the union.
    #[test]
    fn histogram_merge_is_union(
        a in proptest::collection::vec(0u64..10_000_000, 0..200),
        b in proptest::collection::vec(0u64..10_000_000, 0..200),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &v in &a { ha.record_nanos(v); hu.record_nanos(v); }
        for &v in &b { hb.record_nanos(v); hu.record_nanos(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max_nanos(), hu.max_nanos());
        for q in [0.25, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.value_at_quantile(q), hu.value_at_quantile(q));
        }
    }

    /// RSS is a pure function: same tuple, same queue — and queues are in
    /// range for any tuple and queue count.
    #[test]
    fn rss_mapping_is_stable_and_bounded(
        src_ip in any::<u32>(), src_port in any::<u16>(),
        dst_ip in any::<u32>(), dst_port in any::<u16>(),
        queues in 1usize..64,
    ) {
        let rss = Rss::new(queues);
        let t = FiveTuple::tcp(src_ip, src_port, dst_ip, dst_port);
        let q1 = rss.queue_for(&t);
        let q2 = rss.queue_for(&t);
        prop_assert_eq!(q1, q2);
        prop_assert!(q1 < queues);
    }
}

/// Sequential model check of the shuffle layer: random produce / dequeue /
/// steal / finish sequences against a reference model.
#[test]
fn shuffle_layer_matches_reference_model() {
    use zygos::core::shuffle::{ConnState, FinishOutcome, ShuffleLayer};
    use zygos::sim::rng::Xoshiro256;

    const CORES: usize = 3;
    const CONNS: usize = 9;

    let mut layer = ShuffleLayer::new(CORES);
    let conns: Vec<_> = (0..CONNS).map(|i| layer.register(i % CORES)).collect();

    // Reference model.
    #[derive(Clone, Copy, PartialEq, Debug)]
    enum MState {
        Idle,
        Ready,
        Busy,
    }
    let mut mstate = [MState::Idle; CONNS];
    let mut mqueues: Vec<std::collections::VecDeque<usize>> = vec![Default::default(); CORES];
    let mut mevents = vec![std::collections::VecDeque::new(); CONNS];
    let mut owned: Vec<usize> = Vec::new();

    let mut rng = Xoshiro256::new(2024);
    let mut next_event = 0u64;
    for _ in 0..20_000 {
        match rng.next_bounded(4) {
            0 => {
                // produce on a random connection.
                let c = rng.next_bounded(CONNS as u64) as usize;
                let became_ready = layer.produce(conns[c], next_event);
                mevents[c].push_back(next_event);
                next_event += 1;
                let expect = mstate[c] == MState::Idle;
                assert_eq!(became_ready, expect, "produce transition");
                if expect {
                    mstate[c] = MState::Ready;
                    mqueues[c % CORES].push_back(c);
                }
            }
            1 => {
                // dequeue_local on a random core.
                let core = rng.next_bounded(CORES as u64) as usize;
                let got = layer.dequeue_local(core);
                let expect = mqueues[core].pop_front();
                assert_eq!(got.map(|c| c.index()), expect, "dequeue result");
                if let Some(c) = expect {
                    mstate[c] = MState::Busy;
                    owned.push(c);
                }
            }
            2 => {
                // steal from a random victim.
                let victim = rng.next_bounded(CORES as u64) as usize;
                let got = layer.try_steal(victim);
                let expect = mqueues[victim].pop_front();
                assert_eq!(got.map(|c| c.index()), expect, "steal result");
                if let Some(c) = expect {
                    mstate[c] = MState::Busy;
                    owned.push(c);
                }
            }
            _ => {
                // take events + finish an owned connection.
                if let Some(pos) =
                    (!owned.is_empty()).then(|| rng.next_bounded(owned.len() as u64) as usize)
                {
                    let c = owned.swap_remove(pos);
                    let events = layer.take_events(conns[c], usize::MAX);
                    let expect: Vec<u64> = mevents[c].drain(..).collect();
                    assert_eq!(events, expect, "event order");
                    let outcome = layer.finish(conns[c]);
                    // No events can arrive while we hold it (sequential
                    // test), so it must go idle.
                    assert_eq!(outcome, FinishOutcome::Idle);
                    mstate[c] = MState::Idle;
                }
            }
        }
        // Invariant: queue lengths agree.
        for (core, mq) in mqueues.iter().enumerate() {
            assert_eq!(layer.queue_len(core), mq.len());
        }
    }
    // Final states agree.
    for c in 0..CONNS {
        let expect = match mstate[c] {
            MState::Idle => ConnState::Idle,
            MState::Ready => ConnState::Ready,
            MState::Busy => ConnState::Busy,
        };
        assert_eq!(layer.state_of(conns[c]), expect, "final state of {c}");
    }
}

/// Observation 1 as a property over distributions: centralized FCFS never
/// loses to partitioned FCFS by more than simulation noise.
#[test]
fn centralized_dominates_partitioned_across_distributions() {
    use zygos::sim::dist::ServiceDist;
    use zygos::sim::queueing::{simulate, Policy, QueueConfig};
    for service in [
        ServiceDist::deterministic_us(1.0),
        ServiceDist::exponential_us(1.0),
        ServiceDist::bimodal1_us(1.0),
        ServiceDist::lognormal_us(1.0, 2.0),
    ] {
        for load in [0.3, 0.6, 0.8] {
            let run = |policy| {
                simulate(&QueueConfig {
                    servers: 16,
                    load,
                    service: service.clone(),
                    policy,
                    requests: 30_000,
                    seed: 5,
                    warmup: 5_000,
                })
                .p99_us()
            };
            let central = run(Policy::CentralFcfs);
            let part = run(Policy::PartitionedFcfs);
            assert!(
                central <= part * 1.10,
                "{} @ {load}: central {central} vs partitioned {part}",
                service.label()
            );
        }
    }
}
