//! Acceptance tests for credit-based admission control (`fig13`): in
//! sustained overload the credit gate keeps the *admitted* tail bounded
//! while every PR-1 policy diverges.
//!
//! The simulator is deterministic (fixed seeds, integer time), so these
//! are exact regressions, not statistical ones. The same configuration and
//! bound constants as the figure are imported, so the test certifies what
//! `fig13_overload` reports.

use zygos::sim::dist::ServiceDist;
use zygos::sysim::{run_system, SysConfig, SystemKind};
use zygos_bench::fig12_elastic::QUANTUM_US;
use zygos_bench::fig13::{credit_config, BOUND_US, SLO_US};

fn cfg(load: f64) -> SysConfig {
    let mut c = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), load);
    c.requests = 20_000;
    c.warmup = 4_000;
    c
}

#[test]
fn credit_gate_bounds_admitted_p99_where_pr1_policies_diverge() {
    for load in [1.2, 1.4] {
        let stat = run_system(&cfg(load));
        let mut ecfg = cfg(load);
        ecfg.system = SystemKind::Elastic { min_cores: 2 };
        ecfg.preemption_quantum_us = QUANTUM_US;
        let elastic = run_system(&ecfg);
        let mut ccfg = cfg(load);
        ccfg.admission = Some(credit_config(ccfg.cores));
        let credits = run_system(&ccfg);

        assert!(
            credits.p99_us() <= BOUND_US,
            "load {load}: admitted p99 {} exceeds 2xSLO bound {BOUND_US}",
            credits.p99_us()
        );
        assert!(
            credits.rejected > 0 && credits.shed_fraction() > 0.1,
            "load {load}: overload must shed (got {})",
            credits.shed_fraction()
        );
        assert!(
            stat.p99_us() > 2.0 * BOUND_US,
            "load {load}: static p99 {} should diverge",
            stat.p99_us()
        );
        assert!(
            elastic.p99_us() > 2.0 * BOUND_US,
            "load {load}: elastic p99 {} should diverge",
            elastic.p99_us()
        );
    }
}

#[test]
fn credit_gate_is_nearly_transparent_below_saturation() {
    // At 60% load the gate must not get in the way: negligible shedding
    // and an SLO-met tail.
    let mut c = cfg(0.6);
    c.admission = Some(credit_config(c.cores));
    let out = run_system(&c);
    assert!(
        out.shed_fraction() < 0.01,
        "shed {} at load 0.6",
        out.shed_fraction()
    );
    assert!(
        out.p99_us() <= SLO_US,
        "p99 {} should meet the SLO under normal load",
        out.p99_us()
    );
}

#[test]
fn goodput_holds_near_capacity_under_overload() {
    // The point of shedding: what *is* admitted completes at a rate near
    // the machine's capacity (1.6 MRPS ideal for 16 cores @ 10µs), instead
    // of everything timing out together.
    let mut c = cfg(1.4);
    c.admission = Some(credit_config(c.cores));
    let out = run_system(&c);
    let goodput = out.throughput_mrps();
    assert!(
        goodput > 1.1,
        "admitted goodput {goodput} MRPS collapsed under overload"
    );
}
