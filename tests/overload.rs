//! Acceptance tests for credit-based admission control (`fig13`): in
//! sustained overload the credit gate keeps the *admitted* tail bounded
//! while every PR-1 policy diverges.
//!
//! The simulator is deterministic (fixed seeds, integer time), so these
//! are exact regressions, not statistical ones. The same configuration and
//! bound constants as the figure are imported, so the test certifies what
//! `fig13_overload` reports.
//!
//! The assertions are **invariants**, not pinned constants: admitted p99
//! within 2× the SLO, shedding present and monotone in offered load,
//! client-side credits strictly cheaper on the wire. The exact shed
//! percentage is a function of the AIMD target derivation (now per tenant
//! class via `TenantSlos`), and pinning it would turn every legitimate
//! target change into a test failure.

use zygos::sim::dist::ServiceDist;
use zygos::sysim::{run_system, AdmissionMode, SysConfig, SystemKind};
use zygos_bench::fig12_elastic::QUANTUM_US;
use zygos_bench::fig13::{credit_config, tenant_slos, BOUND_US, SLO_US};

fn cfg(load: f64) -> SysConfig {
    let mut c = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), load);
    c.requests = 20_000;
    c.warmup = 4_000;
    c
}

fn credit_cfg(load: f64, mode: AdmissionMode) -> SysConfig {
    let mut c = cfg(load);
    c.admission = Some(credit_config(c.cores));
    c.admission_mode = mode;
    c
}

#[test]
fn credit_gate_bounds_admitted_p99_where_pr1_policies_diverge() {
    for load in [1.2, 1.4] {
        let stat = run_system(&cfg(load));
        let mut ecfg = cfg(load);
        ecfg.system = SystemKind::Elastic { min_cores: 2 };
        ecfg.preemption_quantum_us = QUANTUM_US;
        let elastic = run_system(&ecfg);
        let credits = run_system(&credit_cfg(load, AdmissionMode::ServerEdge));

        assert!(
            credits.p99_us() <= BOUND_US,
            "load {load}: admitted p99 {} exceeds 2xSLO bound {BOUND_US}",
            credits.p99_us()
        );
        assert!(
            credits.rejected > 0,
            "load {load}: sustained overload must shed"
        );
        assert!(
            stat.p99_us() > 2.0 * BOUND_US,
            "load {load}: static p99 {} should diverge",
            stat.p99_us()
        );
        assert!(
            elastic.p99_us() > 2.0 * BOUND_US,
            "load {load}: elastic p99 {} should diverge",
            elastic.p99_us()
        );
    }
}

#[test]
fn shed_fraction_is_monotone_in_offered_load() {
    // The invariant behind any fixed-percentage intuition: more offered
    // load past saturation means a larger (never smaller) shed fraction,
    // for both shed locations.
    for mode in [AdmissionMode::ServerEdge, AdmissionMode::ClientSide] {
        let mut prev = 0.0;
        for load in [1.0, 1.2, 1.4] {
            let out = run_system(&credit_cfg(load, mode));
            let shed = out.shed_fraction();
            assert!(
                shed + 1e-9 >= prev,
                "{mode:?}: shed fraction fell from {prev} to {shed} at load {load}"
            );
            prev = shed;
        }
        assert!(prev > 0.0, "{mode:?}: no shedding at 1.4x overload");
    }
}

#[test]
fn client_side_credits_waste_no_wire_rtt() {
    for load in [1.2, 1.4] {
        let server = run_system(&credit_cfg(load, AdmissionMode::ServerEdge));
        let client = run_system(&credit_cfg(load, AdmissionMode::ClientSide));
        assert!(
            server.wasted_wire_us() > 0.0,
            "load {load}: server-edge rejects must burn RTT"
        );
        assert_eq!(
            client.wasted_wire_us(),
            0.0,
            "load {load}: creditless requests must never be sent"
        );
        assert!(
            client.p99_us() <= BOUND_US,
            "load {load}: client-side admitted p99 {} must stay bounded",
            client.p99_us()
        );
    }
}

#[test]
fn weighted_fair_shedding_sheds_the_loosest_class_first() {
    for load in [1.2, 1.4] {
        let mut c = credit_cfg(load, AdmissionMode::ServerEdge);
        c.slo = Some(tenant_slos());
        let out = run_system(&c);
        assert!(out.rejected > 0, "load {load}: overload must shed");
        // Class 0 = interactive (strict), class 1 = batch (loose): the
        // batch class must carry strictly more of the sheds.
        assert!(
            out.shed_share_of_class(1) > out.shed_share_of_class(0),
            "load {load}: batch share {:.2} must exceed interactive {:.2}",
            out.shed_share_of_class(1),
            out.shed_share_of_class(0)
        );
        assert!(
            out.p99_us() <= BOUND_US,
            "load {load}: multi-tenant admitted p99 {} must stay bounded",
            out.p99_us()
        );
    }
}

#[test]
fn strict_tenant_saturation_leaves_batch_its_floor() {
    // The PR-4 per-class occupancy rule (`class_in_flight < cap_c &&
    // total < capacity`): the strict class alone offers more than the
    // whole machine's capacity, so under the old global-occupancy trunk
    // reservation the pool sat permanently above the batch threshold and
    // batch was shed almost entirely. Tracking per-class in-flight means
    // batch is only shed by its *own* cap or a genuinely full pool — it
    // retains a floor of admissions.
    for load in [1.4, 2.0] {
        let mut c = credit_cfg(load, AdmissionMode::ServerEdge);
        c.slo = Some(tenant_slos());
        let out = run_system(&c);
        assert!(out.rejected > 0, "load {load}: overload must shed");
        // Batch (class 1, capped at half the pool) still sheds more than
        // interactive — the fairness order is unchanged...
        assert!(
            out.shed_rate_of_class(1) > out.shed_rate_of_class(0),
            "load {load}: batch rate {:.2} must exceed interactive {:.2}",
            out.shed_rate_of_class(1),
            out.shed_rate_of_class(0)
        );
        // ...but it is no longer starved: it admits a real share of its
        // own arrivals even while the strict class saturates the pool.
        assert!(
            out.shed_rate_of_class(1) < 0.95,
            "load {load}: batch must keep a floor, shed rate {:.2}",
            out.shed_rate_of_class(1)
        );
        assert!(
            out.admitted_by_class[1] * 10 > out.admitted_by_class[0],
            "load {load}: batch admissions {} vs interactive {}",
            out.admitted_by_class[1],
            out.admitted_by_class[0]
        );
        // The admitted tail still holds.
        assert!(
            out.p99_us() <= BOUND_US,
            "load {load}: admitted p99 {} must stay bounded",
            out.p99_us()
        );
    }
}

#[test]
fn credit_gate_is_nearly_transparent_below_saturation() {
    // At 60% load the gate must not get in the way: negligible shedding
    // and an SLO-met tail, wherever the shed happens.
    for mode in [AdmissionMode::ServerEdge, AdmissionMode::ClientSide] {
        let out = run_system(&credit_cfg(0.6, mode));
        assert!(
            out.shed_fraction() < 0.01,
            "{mode:?}: shed {} at load 0.6",
            out.shed_fraction()
        );
        assert!(
            out.p99_us() <= SLO_US,
            "{mode:?}: p99 {} should meet the SLO under normal load",
            out.p99_us()
        );
    }
}

#[test]
fn goodput_holds_near_capacity_under_overload() {
    // The point of shedding: what *is* admitted completes at a rate near
    // the machine's capacity (1.6 MRPS ideal for 16 cores @ 10µs), instead
    // of everything timing out together.
    let out = run_system(&credit_cfg(1.4, AdmissionMode::ServerEdge));
    let goodput = out.throughput_mrps();
    assert!(
        goodput > 1.1,
        "admitted goodput {goodput} MRPS collapsed under overload"
    );
}

#[test]
fn aimd_pool_reopens_after_the_overload_clears() {
    // The recovery half of the AIMD loop, at the pool level: a burst of
    // over-target windows clamps the capacity to the floor; once the
    // congestion signal clears, additive increase must walk it back. A
    // twin pool that never saw the burst is the uncontended reference —
    // after the same quiet horizon the recovered pool must be within 90%
    // of it (both saturate at max_credits, so the additive lag the burst
    // cost has washed out by then).
    use zygos::sched::{CreditConfig, CreditPool};
    let cfg = CreditConfig::for_cores(16, 70.0);
    let mut burst = CreditPool::new(cfg);
    let mut quiet = CreditPool::new(cfg);
    for _ in 0..16 {
        burst.update(300.0); // far over target: multiplicative decrease
        quiet.update(50.0);
    }
    assert_eq!(
        burst.capacity(),
        cfg.min_credits,
        "sustained overload must clamp to the floor"
    );
    // Quiet period: both pools see the same below-target signal.
    let (mut reopened_by, mut ticks) = (None, 0u32);
    for t in 0..400 {
        burst.update(50.0);
        quiet.update(50.0);
        if reopened_by.is_none() && burst.capacity() >= cfg.initial_credits {
            reopened_by = Some(t + 1);
        }
        ticks = t + 1;
    }
    // Additive re-opening is linear: (initial - min) / additive ticks,
    // plus one for integer clamping slack.
    let linear = (cfg.initial_credits - cfg.min_credits).div_ceil(cfg.additive) + 1;
    let by = reopened_by.expect("the clamped pool never re-opened");
    assert!(
        by <= linear,
        "re-opening took {by} ticks (additive walk should need <= {linear})"
    );
    assert!(
        burst.capacity() as f64 >= 0.9 * quiet.capacity() as f64,
        "after {ticks} quiet ticks the recovered pool ({}) is still far \
         below the uncontended twin ({})",
        burst.capacity(),
        quiet.capacity()
    );
}

#[test]
fn credit_capacity_recovers_after_a_phased_burst() {
    // The same recovery, end to end through the simulator: a 1.4-load
    // burst in the middle of a 0.5-load run clamps the credit window
    // (visible in the harvested `credit_capacity` series); after the
    // burst passes, the tail of the series must be back within 90% of
    // what an unbursted twin run settles at over the same window.
    use zygos::load::source::Phase;
    use zygos::sysim::{ArrivalSpec, SeriesKind, TelemetryConfig};
    let telem = TelemetryConfig {
        series: vec![SeriesKind::CreditCapacity],
        series_every: 4,
        ..TelemetryConfig::default()
    };
    let mut quiet = credit_cfg(0.5, AdmissionMode::ServerEdge);
    quiet.telemetry = Some(telem.clone());
    let mut burst = quiet.clone();
    // 2.8x of load 0.5 = offered 1.4 for 4ms, 8ms in; the long final
    // phase outlives the run so the cycle never wraps back into it.
    burst.arrivals = ArrivalSpec::Phased(vec![
        Phase {
            duration_us: 8_000.0,
            rate_factor: 1.0,
        },
        Phase {
            duration_us: 4_000.0,
            rate_factor: 2.8,
        },
        Phase {
            duration_us: 1_000_000.0,
            rate_factor: 1.0,
        },
    ]);
    let capacity_series = |cfg: &SysConfig| {
        let out = run_system(cfg);
        let tel = out.telemetry.expect("series armed");
        tel.series
            .into_iter()
            .find(|s| s.name == SeriesKind::CreditCapacity.name())
            .expect("credit_capacity harvested")
            .points
    };
    let (b, q) = (capacity_series(&burst), capacity_series(&quiet));
    let clamped = b
        .iter()
        .filter(|&&(t, _)| (8_000.0..12_000.0).contains(&t))
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    let tail_mean = |pts: &[(f64, f64)]| {
        // The last 25% of the harvested window, by timestamp.
        let t0 = pts.last().expect("non-empty series").0 * 0.75;
        let tail: Vec<f64> = pts.iter().filter(|p| p.0 >= t0).map(|p| p.1).collect();
        assert!(!tail.is_empty());
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    let (recovered, uncontended) = (tail_mean(&b), tail_mean(&q));
    assert!(
        clamped < 0.5 * uncontended,
        "the burst never clamped the credit window (min {clamped} during \
         the burst vs uncontended {uncontended})"
    );
    assert!(
        recovered >= 0.9 * uncontended,
        "credit capacity never re-opened: post-burst tail mean {recovered} \
         vs uncontended {uncontended}"
    );
}
