//! The staged differential wire: a `sim:staged` case running the
//! degenerate single-stage pipeline (`StagedConfig::zygos_equivalent`,
//! unified layout) must reproduce its `sim:zygos` base case
//! **bit-for-bit** — every numeric field of every report point compared
//! via `f64::to_bits`, not within a tolerance. This is what certifies
//! that the staged plane's lowering adds *zero* modelling distortion:
//! any staged-vs-zygos difference in a real experiment is then
//! attributable to stage decomposition and core layout, never to the
//! plumbing.

use zygos::lab::{run_scenario, Case, PointMetrics, Scenario, SimHost};
use zygos::sim::dist::ServiceDist;
use zygos::sysim::StagedConfig;

/// Asserts two points are bitwise identical, field by field.
fn assert_bits(b: &PointMetrics, f: &PointMetrics, what: &str) {
    let scalars = [
        ("load", b.load, f.load),
        ("mrps", b.mrps, f.mrps),
        ("p50_us", b.p50_us, f.p50_us),
        ("p99_us", b.p99_us, f.p99_us),
        ("p999_us", b.p999_us, f.p999_us),
        ("steal_fraction", b.steal_fraction, f.steal_fraction),
        ("ipis_per_req", b.ipis_per_req, f.ipis_per_req),
        (
            "preemptions_per_req",
            b.preemptions_per_req,
            f.preemptions_per_req,
        ),
        ("avg_cores", b.avg_cores, f.avg_cores),
        ("core_seconds", b.core_seconds, f.core_seconds),
        ("shed_fraction", b.shed_fraction, f.shed_fraction),
        ("wasted_wire_us", b.wasted_wire_us, f.wasted_wire_us),
        ("p99_queue_us", b.p99_queue_us, f.p99_queue_us),
        ("p99_service_us", b.p99_service_us, f.p99_service_us),
        ("p99_steal_us", b.p99_steal_us, f.p99_steal_us),
        ("p99_preempt_us", b.p99_preempt_us, f.p99_preempt_us),
    ];
    for (name, zygos, staged) in scalars {
        assert_eq!(
            zygos.to_bits(),
            staged.to_bits(),
            "{what}: field {name} differs (zygos {zygos}, staged {staged})"
        );
    }
    for (name, zygos, staged) in [
        (
            "shed_share_by_class",
            &b.shed_share_by_class,
            &f.shed_share_by_class,
        ),
        (
            "shed_rate_by_class",
            &b.shed_rate_by_class,
            &f.shed_rate_by_class,
        ),
        (
            "stage_p99_wait_us",
            &b.stage_p99_wait_us,
            &f.stage_p99_wait_us,
        ),
    ] {
        assert_eq!(zygos.len(), staged.len(), "{what}: {name} length");
        for (i, (z, s)) in zygos.iter().zip(staged).enumerate() {
            assert_eq!(
                z.to_bits(),
                s.to_bits(),
                "{what}: {name}[{i}] differs (zygos {z}, staged {s})"
            );
        }
    }
    assert_eq!(
        b.timeseries.len(),
        f.timeseries.len(),
        "{what}: timeseries count"
    );
}

#[test]
fn degenerate_staged_pipeline_is_bit_identical_to_zygos() {
    // One twin pair across sub- and over-saturation loads. The grid
    // descends so no two consecutive loads form a warm-start chain:
    // staged cases always run cold, so the zygos twin must too.
    let sc = Scenario::builder("staged-diff")
        .service(ServiceDist::exponential_us(10.0))
        .cores(4)
        .conns(64)
        .loads(vec![1.3, 0.8, 0.3])
        .requests(6_000, 1_200)
        .smoke(2_000, 400)
        .stages(StagedConfig::zygos_equivalent().stages)
        .case(Case::sim("base", SimHost::Zygos))
        .case(Case::sim("staged", SimHost::Staged))
        .build()
        .expect("valid");
    let report = run_scenario(&sc, true).expect("runs");
    let zygos = report.series("base").expect("zygos series");
    let staged = report.series("staged").expect("staged series");
    assert_eq!(zygos.points.len(), staged.points.len());
    assert!(staged.deterministic);
    for (b, f) in zygos.points.iter().zip(&staged.points) {
        // The degenerate pipeline reports no stage decomposition at all:
        // it is the zygos world, not a one-stage imitation of it.
        assert!(
            f.stage_p99_wait_us.is_empty(),
            "degenerate staged run must not grow a stage plane"
        );
        assert_bits(b, f, &format!("staged @ load {}", b.load));
    }
}
