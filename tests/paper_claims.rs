//! Cross-crate tests of the paper's quantitative claims, using the same
//! public APIs the figure binaries use. These are the repository's
//! regression net for the reproduction itself.

use zygos::kv::workload::{KvWorkload, WorkloadKind};
use zygos::silo::tpcc::{Tpcc, TpccConfig, TpccRng, TxnType};
use zygos::sim::dist::ServiceDist;
use zygos::sim::queueing::theory;
use zygos::sysim::{latency_throughput_sweep, SysConfig, SystemKind};

fn small_cfg(system: SystemKind, service: ServiceDist) -> SysConfig {
    let mut cfg = SysConfig::paper(system, service, 0.5);
    cfg.requests = 20_000;
    cfg.warmup = 4_000;
    cfg
}

/// §3.1: the quoted theory operating points for the exponential
/// distribution at SLO 10·S̄: 53.7% partitioned, 96.3% centralized.
#[test]
fn quoted_theory_loads() {
    assert!((theory::mm1_max_load_at_p99_slo(10.0) - 0.537).abs() < 0.005);
    assert!((theory::mmn_max_load_at_p99_slo(16, 10.0) - 0.963).abs() < 0.005);
}

/// Figure 6's qualitative content: at 10µs exponential, ZygOS sustains low
/// p99 at loads where IX has already blown through the SLO.
#[test]
fn fig6_zygos_vs_ix_tail() {
    let loads = [0.7];
    let zygos = latency_throughput_sweep(
        &small_cfg(SystemKind::Zygos, ServiceDist::exponential_us(10.0)),
        &loads,
    );
    let ix = latency_throughput_sweep(
        &small_cfg(SystemKind::Ix, ServiceDist::exponential_us(10.0)),
        &loads,
    );
    assert!(
        zygos[0].p99_us < 100.0,
        "ZygOS meets the 10x SLO at 70% load: {}",
        zygos[0].p99_us
    );
    assert!(
        ix[0].p99_us > 100.0,
        "IX violates the 10x SLO at 70% load: {}",
        ix[0].p99_us
    );
}

/// Figure 8's two properties: the cooperative steal rate peaks around a
/// third of events, and IPIs raise it substantially.
#[test]
fn fig8_steal_rate_shape() {
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
    let coop = latency_throughput_sweep(
        &small_cfg(
            SystemKind::ZygosNoInterrupts,
            ServiceDist::exponential_us(25.0),
        ),
        &loads,
    );
    let ipi = latency_throughput_sweep(
        &small_cfg(SystemKind::Zygos, ServiceDist::exponential_us(25.0)),
        &loads,
    );
    let coop_peak = coop.iter().map(|p| p.steal_fraction).fold(0.0, f64::max);
    let ipi_peak = ipi.iter().map(|p| p.steal_fraction).fold(0.0, f64::max);
    assert!(
        (0.20..0.50).contains(&coop_peak),
        "cooperative peak steal rate ~33% (paper): {coop_peak}"
    );
    assert!(
        ipi_peak > coop_peak + 0.15,
        "interrupts substantially raise stealing: {ipi_peak} vs {coop_peak}"
    );
    // Steals vanish toward saturation.
    assert!(ipi.last().unwrap().steal_fraction < ipi_peak * 0.8);
}

/// Figure 9's qualitative ordering at tiny task sizes: IX B=64 sustains
/// more load than ZygOS, which beats IX B=1.
#[test]
fn fig9_tiny_task_ordering() {
    let service = KvWorkload::new(WorkloadKind::Usr).service_dist(30_000, 3);
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
    let max_under = |system, batch: u64| {
        let mut cfg = small_cfg(system, service.clone());
        cfg.rx_batch = batch;
        latency_throughput_sweep(&cfg, &loads)
            .iter()
            .filter(|p| p.p99_us <= 500.0)
            .map(|p| p.mrps)
            .fold(0.0, f64::max)
    };
    let ix_b64 = max_under(SystemKind::Ix, 64);
    let ix_b1 = max_under(SystemKind::Ix, 1);
    let zygos = max_under(SystemKind::Zygos, 64);
    assert!(
        ix_b64 >= zygos * 0.98,
        "batching wins for tiny tasks: IX B=64 {ix_b64} vs ZygOS {zygos}"
    );
    assert!(
        zygos > ix_b1 * 0.95,
        "ZygOS at least matches IX B=1: {zygos} vs {ix_b1}"
    );
}

/// Figure 10a's content: the TPC-C mix is multimodal with Delivery and
/// StockLevel far in the tail relative to Payment/OrderStatus.
#[test]
fn fig10a_multimodal_service_times() {
    let tpcc = Tpcc::load(TpccConfig {
        warehouses: 1,
        districts: 10,
        customers_per_district: 300,
        items: 2_000,
        initial_orders: 300,
        seed: 9,
    });
    let mut rng = TpccRng::new(17);
    let mean_us = |kind: TxnType, rng: &mut TpccRng| {
        let n = 40;
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            tpcc.run(kind, rng);
        }
        t0.elapsed().as_nanos() as f64 / 1_000.0 / n as f64
    };
    // Warm up.
    for kind in TxnType::ALL {
        mean_us(kind, &mut rng);
    }
    let payment = mean_us(TxnType::Payment, &mut rng);
    let delivery = mean_us(TxnType::Delivery, &mut rng);
    let stock = mean_us(TxnType::StockLevel, &mut rng);
    assert!(
        delivery > 1.5 * payment,
        "delivery {delivery}us vs payment {payment}us"
    );
    assert!(
        stock > 1.5 * payment,
        "stock {stock}us vs payment {payment}us"
    );
}

/// Table 1's ordering: serving the measured TPC-C mix, ZygOS sustains more
/// load under the 1000µs SLO than IX, which beats Linux.
#[test]
fn table1_system_ordering() {
    // A synthetic stand-in for the measured mix: multimodal with the
    // paper's reported moments (mean 33µs, p99 ≈ 200µs).
    let service = ServiceDist::empirical_us(
        (0..10_000)
            .map(|i| match i % 100 {
                0..=44 => 25.0,   // NewOrder-ish.
                45..=87 => 12.0,  // Payment-ish.
                88..=91 => 20.0,  // OrderStatus-ish.
                92..=95 => 220.0, // Delivery-ish.
                _ => 120.0,       // StockLevel-ish.
            })
            .collect(),
    );
    let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let max_under = |system| {
        latency_throughput_sweep(&small_cfg(system, service.clone()), &loads)
            .iter()
            .filter(|p| p.p99_us <= 1_000.0)
            .map(|p| p.mrps)
            .fold(0.0, f64::max)
    };
    let zygos = max_under(SystemKind::Zygos);
    let ix = max_under(SystemKind::Ix);
    let linux = max_under(SystemKind::LinuxFloating);
    assert!(zygos > ix, "zygos {zygos} vs ix {ix}");
    assert!(zygos > linux, "zygos {zygos} vs linux {linux}");
}
