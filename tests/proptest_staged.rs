//! Property tests of the staged service plane: per-stage completion
//! conservation across arbitrary layouts, disciplines, loads and seeds.
//! A request completes stage *k* before it can enter stage *k+1*, so
//! the per-stage completion counts must be non-increasing along the
//! pipeline, and the final (app) count is exactly the number of
//! requests the run completed end to end. These pin the invariant the
//! scenario-level crossover experiments rely on, over parameter
//! combinations the committed scenarios never enumerate.

use proptest::prelude::*;

use zygos::sim::dist::ServiceDist;
use zygos::sysim::{run_system, CoreLayout, QueueDiscipline, StagedConfig, SysConfig, SystemKind};

/// A small staged world: 4 cores, tiny windows, fast to run under the
/// generated case count.
fn staged_base(load: f64, seed: u64, plan: StagedConfig) -> SysConfig {
    let mut cfg = SysConfig::paper(SystemKind::Staged, ServiceDist::exponential_us(10.0), load);
    cfg.cores = 4;
    cfg.conns = 48;
    cfg.requests = 800;
    cfg.warmup = 150;
    cfg.seed = seed;
    cfg.staged = Some(plan);
    cfg
}

const LAYOUTS: [CoreLayout; 3] = [
    CoreLayout::Unified,
    CoreLayout::SplitNet { net_cores: 1 },
    CoreLayout::SplitFull {
        poll_cores: 1,
        stack_cores: 1,
    },
];

const DISCIPLINES: [QueueDiscipline; 3] = [
    QueueDiscipline::Cfcfs,
    QueueDiscipline::Dfcfs,
    QueueDiscipline::DfcfsSteal,
];

proptest! {
    /// Pipeline conservation: stage completion counts never increase
    /// along the pipeline, the app stage's count equals the end-to-end
    /// completion count, and the per-stage wait telemetry is present
    /// and finite — for every layout × discipline × load × seed.
    #[test]
    fn stages_conserve_completions(
        layout_ix in 0usize..3,
        discipline_ix in 0usize..3,
        load in 0.3f64..1.1,
        seed in 0u64..1_000_000,
    ) {
        let mut plan = StagedConfig::paper_pipeline(&zygos::net::cost::CostModel::zygos());
        plan.layout = LAYOUTS[layout_ix];
        for s in &mut plan.stages {
            s.discipline = DISCIPLINES[discipline_ix];
        }
        let cfg = staged_base(load, seed, plan.clone());
        prop_assert!(plan.validate(cfg.cores).is_ok());
        let out = run_system(&cfg);
        prop_assert!(out.completed > 0, "the staged host completed nothing");
        prop_assert_eq!(out.stage_counts.len(), plan.stages.len());
        for w in out.stage_counts.windows(2) {
            prop_assert!(w[0] >= w[1],
                "a later stage completed more than an earlier one: {:?}", out.stage_counts);
        }
        prop_assert_eq!(
            *out.stage_counts.last().expect("non-empty pipeline"),
            out.completed_total,
            "app-stage completions must equal end-to-end completions"
        );
        prop_assert_eq!(out.stage_p99_wait_us.len(), plan.stages.len());
        for (i, w) in out.stage_p99_wait_us.iter().enumerate() {
            prop_assert!(w.is_finite() && *w >= 0.0,
                "stage {i} p99 wait {w} is not a finite non-negative time");
        }
    }
}
