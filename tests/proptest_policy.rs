//! Property-based tests of the policy plane's new control loops: the
//! Breakwater-style credit pool (admission) and the SLO-margin core
//! allocator (staffing).
//!
//! Both are pure state machines, so the properties are model-checked
//! directly — no simulator or runtime host involved.

use proptest::prelude::*;

use zygos::sched::{
    AllocPolicy, AllocatorConfig, CreditConfig, CreditPool, Decision, PolicySignal, SloController,
    SloTuning,
};

fn credit_cfg(min: u32, max: u32, initial: u32) -> CreditConfig {
    CreditConfig {
        min_credits: min,
        max_credits: max,
        initial_credits: initial,
        additive: 2,
        md_factor: 0.3,
        target: 100.0,
    }
}

proptest! {
    /// The pool never admits beyond capacity: at every step,
    /// `in_flight <= capacity` or (after a multiplicative decrease pulled
    /// capacity below the already-admitted count) admission is refused
    /// until completions drain the excess. Also: capacity never leaves
    /// `[min_credits, max_credits]`.
    #[test]
    fn credits_never_admit_beyond_capacity(
        min_raw in 1u32..16,
        max in 16u32..256,
        initial in 1u32..512,
        // Each op: 0 = arrival, 1 = completion, 2 = AIMD tick with a
        // random congestion sample.
        ops in proptest::collection::vec((0u8..3, 0u32..10_000), 1..600),
    ) {
        let min = min_raw.min(max);
        let mut p = CreditPool::new(credit_cfg(min, max, initial));
        let mut outstanding: u32 = 0; // Admits minus releases (ground truth).
        for (op, arg) in ops {
            match op {
                0 => {
                    let admitted = p.try_admit();
                    if admitted {
                        outstanding += 1;
                        prop_assert!(
                            outstanding <= p.capacity(),
                            "admitted past capacity: {} > {}",
                            outstanding, p.capacity()
                        );
                    } else {
                        // Refusal is only legal when the pool is full (or
                        // over-committed after a shrink).
                        prop_assert!(outstanding >= p.capacity());
                    }
                }
                1 => {
                    if outstanding > 0 {
                        p.release();
                        outstanding -= 1;
                    }
                }
                _ => p.update(arg as f64),
            }
            prop_assert_eq!(p.in_flight(), outstanding);
            prop_assert!((min..=max).contains(&p.capacity()));
        }
    }

    /// No deadlock at zero credits: whatever the AIMD history, once every
    /// admitted request completes the pool admits again — the capacity
    /// floor (≥ 1) guarantees a grantable credit.
    #[test]
    fn credits_never_deadlock_at_zero(
        max in 1u32..128,
        initial in 1u32..128,
        // Adversarial congestion history: arbitrarily severe overloads.
        signals in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
        admits in 1u32..64,
    ) {
        let mut p = CreditPool::new(credit_cfg(1, max, initial));
        // Fill the pool to whatever it will take.
        let mut held = 0u32;
        for _ in 0..admits {
            if p.try_admit() { held += 1; }
        }
        // Crush capacity with the adversarial signal.
        for s in signals {
            p.update(s as f64);
        }
        prop_assert!(p.capacity() >= 1, "capacity floor violated");
        // Drain: every admitted request completes.
        for _ in 0..held {
            p.release();
        }
        prop_assert_eq!(p.in_flight(), 0);
        prop_assert!(p.try_admit(), "drained pool must admit (no deadlock)");
    }

    /// Settling: on a step load change, the SLO controller converges and
    /// then stops changing its mind — no limit cycle. The plant is a
    /// monotone queueing proxy: the tail ratio falls as cores are added
    /// (`ratio = k · demand / active`), utilization is the demand capped
    /// by the grant.
    #[test]
    fn slo_controller_settles_after_step_change(
        max in 8usize..33,
        demand_before in 1u32..8,
        demand_after in 8u32..16,
        k in 0.6f64..1.2,
    ) {
        let demand_after = demand_after.min(max as u32);
        let mut c = SloController::new(
            AllocatorConfig {
                min_cores: 1,
                max_cores: max,
                tuning: Default::default(),
            },
            SloTuning::default(),
        );
        let plant = |demand: u32, active: usize| PolicySignal {
            busy_cores: (demand as f64).min(active as f64),
            backlog: (demand as usize).saturating_sub(active),
            slo_ratio: Some(k * demand as f64 / active as f64),
        };
        // Warm up on the pre-step demand.
        for _ in 0..300 {
            let sig = plant(demand_before, c.active());
            c.observe(&sig);
        }
        // Step up, give it time to converge...
        for _ in 0..300 {
            let sig = plant(demand_after, c.active());
            c.observe(&sig);
        }
        // ...then require a fixed point: no further changes, ever.
        let settled = c.active();
        for t in 0..200 {
            let sig = plant(demand_after, c.active());
            let d = c.observe(&sig);
            prop_assert_eq!(d, Decision::Hold, "oscillating at tick {} (active {})", t, c.active());
        }
        prop_assert_eq!(c.active(), settled);
        // And the fixed point actually serves the demand: the plant's
        // ratio at the settled grant sits at or below the breach line.
        let final_ratio = k * demand_after as f64 / settled as f64;
        prop_assert!(
            final_ratio <= 1.0 || settled == max,
            "settled at {} cores with ratio {:.2} and head-room",
            settled, final_ratio
        );
    }
}
