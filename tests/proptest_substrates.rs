//! Property-based tests over the substrate crates: rings, time arithmetic,
//! distributions, Silo row codecs and TPC-C key order.

use proptest::prelude::*;

use zygos::net::ring::{MpscRing, SpscRing};
use zygos::silo::tpcc::keys;
use zygos::silo::tpcc::rows::{Customer, OrderLine, Row, Stock};
use zygos::sim::dist::ServiceDist;
use zygos::sim::rng::Xoshiro256;
use zygos::sim::time::{SimDuration, SimTime};

proptest! {
    /// An SPSC ring behaves as a bounded FIFO under any single-threaded
    /// push/pop sequence.
    #[test]
    fn spsc_ring_is_a_bounded_fifo(
        capacity in 1usize..64,
        ops in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let ring = SpscRing::with_capacity(capacity);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u64;
        for push in ops {
            if push {
                let res = ring.push(next);
                if model.len() < ring.capacity() {
                    prop_assert!(res.is_ok());
                    model.push_back(next);
                } else {
                    prop_assert_eq!(res, Err(next));
                }
                next += 1;
            } else {
                prop_assert_eq!(ring.pop(), model.pop_front());
            }
            prop_assert_eq!(ring.occupancy(), model.len());
        }
    }

    /// The MPSC ring preserves single-producer order.
    #[test]
    fn mpsc_ring_single_producer_order(values in proptest::collection::vec(any::<u32>(), 1..100)) {
        let ring = MpscRing::with_capacity(values.len().max(1));
        for &v in &values {
            ring.push(v).expect("capacity");
        }
        for &v in &values {
            prop_assert_eq!(ring.pop(), Some(v));
        }
        prop_assert!(ring.is_empty());
    }

    /// Time arithmetic never panics and is monotone.
    #[test]
    fn sim_time_arithmetic_total(a in any::<u64>(), b in any::<u64>()) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        let later = t + d;
        prop_assert!(later >= t);
        prop_assert!(later.duration_since(t) <= d);
        prop_assert_eq!(t.duration_since(later), SimDuration::ZERO);
    }

    /// Every distribution samples non-negative finite values with a mean
    /// near its declared mean.
    #[test]
    fn distributions_sample_sanely(seed in any::<u64>(), mean in 1.0f64..100.0) {
        for d in [
            ServiceDist::deterministic_us(mean),
            ServiceDist::exponential_us(mean),
            ServiceDist::bimodal1_us(mean),
            ServiceDist::bimodal2_us(mean),
        ] {
            let mut rng = Xoshiro256::new(seed);
            let n = 20_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = d.sample_us(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0);
                sum += x;
            }
            let m = sum / n as f64;
            // Bimodal-2's rare 500.5·S̄ mode needs many samples; allow wide.
            prop_assert!(
                (m - mean).abs() / mean < 0.5,
                "{}: mean {} vs {}", d.label(), m, mean
            );
        }
    }

    /// Silo row codecs round-trip arbitrary field contents.
    #[test]
    fn customer_codec_roundtrip(
        c_id in any::<u32>(),
        balance in -1e6f64..1e6,
        first in "[a-zA-Z0-9]{0,16}",
        data in "[a-zA-Z0-9]{0,500}",
    ) {
        let c = Customer {
            c_id,
            d_id: 3,
            w_id: 7,
            first,
            middle: "OE".into(),
            last: "BARBARBAR".into(),
            street1: "s".into(),
            city: "c".into(),
            state: "st".into(),
            zip: "z".into(),
            phone: "p".into(),
            since: 1,
            credit: "GC".into(),
            credit_lim: 50_000.0,
            discount: 0.1,
            balance,
            ytd_payment: 0.0,
            payment_cnt: 0,
            delivery_cnt: 0,
            data,
        };
        prop_assert_eq!(Customer::decode(&c.encode()), c);
    }

    /// Order-line codec round-trips.
    #[test]
    fn order_line_codec_roundtrip(
        o_id in any::<u32>(),
        amount in 0f64..10_000.0,
        qty in any::<u8>(),
    ) {
        let ol = OrderLine {
            o_id,
            d_id: 1,
            w_id: 1,
            ol_number: 5,
            i_id: 77,
            supply_w_id: 1,
            delivery_d: 0,
            quantity: qty,
            amount,
            dist_info: "d".repeat(24),
        };
        prop_assert_eq!(OrderLine::decode(&ol.encode()), ol);
    }

    /// Stock codec round-trips with the 10 concatenated dist strings.
    #[test]
    fn stock_codec_roundtrip(i_id in any::<u32>(), quantity in -1000i32..1000) {
        let s = Stock {
            i_id,
            w_id: 2,
            quantity,
            dists: "x".repeat(240),
            ytd: 1.5,
            order_cnt: 3,
            remote_cnt: 1,
            data: "d".into(),
        };
        prop_assert_eq!(Stock::decode(&s.encode()), s);
    }

    /// TPC-C keys sort by their logical component order.
    #[test]
    fn tpcc_keys_order_by_components(
        w in 1u16..100, d in 1u8..11,
        a in any::<u32>(), b in any::<u32>(),
    ) {
        prop_assert_eq!(keys::order(w, d, a) < keys::order(w, d, b), a < b);
        prop_assert_eq!(
            keys::new_order(w, d, a) < keys::new_order(w, d, b), a < b);
        // Customer index groups by customer before order id.
        if a != b {
            prop_assert!(
                keys::order_by_customer(w, d, a.min(b), u32::MAX)
                    < keys::order_by_customer(w, d, a.max(b), 0)
            );
        }
    }

    /// Quantile function of the two-point distributions is consistent with
    /// sampling.
    #[test]
    fn twopoint_quantiles_consistent(mean in 1.0f64..50.0, q in 0.0f64..1.0) {
        let d = ServiceDist::bimodal1_us(mean);
        let v = d.quantile_us(q).expect("closed form");
        prop_assert!(v == 0.5 * mean || v == 5.5 * mean);
        prop_assert_eq!(v == 0.5 * mean, q < 0.9);
    }
}
