//! Acceptance tests for the elastic-scheduling subsystem (`zygos-sched` +
//! `SystemKind::Elastic` + `preemption_quantum_us`).
//!
//! The headline claims, asserted on the bimodal(99.5% × 0.5µs,
//! 0.5% × 500µs) mix reported by `fig12_elastic`:
//!
//! * at high load (≥ 0.7), elastic ZygOS with a nonzero preemption quantum
//!   achieves **lower p99** than static ZygOS — the quantum bounds the
//!   head-of-line blocking that connection-granularity stealing cannot
//!   remove once every core holds a 500µs request;
//! * at low load (≤ 0.3), it uses **fewer core-seconds** than the static
//!   16-core allocation.
//!
//! The simulator is deterministic (fixed seeds, integer time), so these
//! comparisons are exact regressions, not statistical ones.

use zygos::sim::dist::ServiceDist;
use zygos::sysim::{run_system, SysConfig, SystemKind};
// The same mix and quantum the figure sweeps — imported, not duplicated,
// so this test always certifies what fig12 reports.
use zygos_bench::fig12_elastic::{bimodal_99_5, QUANTUM_US};

fn cfg(system: SystemKind, load: f64, quantum_us: f64) -> SysConfig {
    let mut c = SysConfig::paper(system, bimodal_99_5(), load);
    c.requests = 25_000;
    c.warmup = 4_000;
    c.preemption_quantum_us = quantum_us;
    c
}

const ELASTIC: SystemKind = SystemKind::Elastic { min_cores: 2 };

#[test]
fn preemptive_quantum_beats_static_zygos_p99_at_high_load() {
    for load in [0.7, 0.75] {
        let stat = run_system(&cfg(SystemKind::Zygos, load, 0.0));
        let elastic = run_system(&cfg(ELASTIC, load, QUANTUM_US));
        assert!(elastic.preemptions > 0, "quantum must fire at load {load}");
        assert!(
            elastic.p99_us() < stat.p99_us(),
            "load {load}: elastic p99 {} must beat static {}",
            elastic.p99_us(),
            stat.p99_us()
        );
    }
}

#[test]
fn elastic_uses_fewer_core_seconds_at_low_load() {
    let load = 0.3;
    let stat = run_system(&cfg(SystemKind::Zygos, load, 0.0));
    let elastic = run_system(&cfg(ELASTIC, load, QUANTUM_US));
    // Static burns all 16 cores (busy-polling) for the whole window.
    assert_eq!(stat.avg_active_cores, 16.0);
    assert!(
        elastic.avg_active_cores < 0.9 * 16.0,
        "elastic must park cores at low load: {:.2} granted on average",
        elastic.avg_active_cores
    );
    assert!(
        elastic.core_seconds_used() < stat.core_seconds_used(),
        "elastic core-seconds {:.4} vs static {:.4}",
        elastic.core_seconds_used(),
        stat.core_seconds_used()
    );
    // The latency cost of parking stays within an order of magnitude of
    // the (excellent) static tail.
    assert!(
        elastic.p99_us() < 10.0 * stat.p99_us(),
        "parked-mode p99 {} vs static {}",
        elastic.p99_us(),
        stat.p99_us()
    );
}

#[test]
fn elastic_parks_deeply_on_low_dispersion_low_load() {
    // Exponential 10µs at 20% load: most of the fleet is parked.
    let mut c = SysConfig::paper(ELASTIC, ServiceDist::exponential_us(10.0), 0.2);
    c.requests = 25_000;
    c.warmup = 4_000;
    c.preemption_quantum_us = QUANTUM_US;
    let out = run_system(&c);
    assert_eq!(out.completed, 25_000);
    assert!(
        out.avg_active_cores < 10.0,
        "expected deep parking, got {:.2} cores",
        out.avg_active_cores
    );
    assert!(out.p99_us() < 200.0, "p99 = {}", out.p99_us());
}

#[test]
fn zero_quantum_never_preempts_and_full_grant_matches_static_shape() {
    let out = run_system(&cfg(ELASTIC, 0.75, 0.0));
    assert_eq!(out.preemptions, 0);
    // At sustained overload the controller keeps (nearly) everything
    // granted: parking under pressure would be a controller bug.
    assert!(
        out.avg_active_cores > 15.0,
        "overload must keep the fleet granted: {:.2}",
        out.avg_active_cores
    );
}

#[test]
fn static_systems_report_static_core_usage() {
    let out = run_system(&cfg(SystemKind::Zygos, 0.5, 0.0));
    assert_eq!(out.avg_active_cores, 16.0);
    assert_eq!(out.preemptions, 0);
    let ix = run_system(&{
        let mut c = SysConfig::paper(SystemKind::Ix, ServiceDist::exponential_us(10.0), 0.4);
        c.requests = 10_000;
        c.warmup = 2_000;
        c
    });
    assert_eq!(ix.avg_active_cores, 16.0);
}
