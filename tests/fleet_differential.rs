//! The fleet differential wire: a 1-shard `fleet:zygos` case under
//! pass-through routing must reproduce its `sim:zygos` base case
//! **bit-for-bit** — every numeric field of every report point compared
//! via `f64::to_bits`, not within a tolerance. This is what certifies
//! that the fleet plane's lowering and Σ-aggregation add *zero*
//! modelling distortion: any fleet-vs-sim difference in a real
//! experiment is then attributable to sharding and routing, never to
//! the plumbing.

use zygos::lab::{run_scenario, Case, FleetSpec, PointMetrics, Scenario, SimHost};
use zygos::sim::dist::ServiceDist;
use zygos::sysim::{AdmissionMode, RoutePolicy};

/// Asserts two points are bitwise identical, field by field.
fn assert_bits(b: &PointMetrics, f: &PointMetrics, what: &str) {
    let scalars = [
        ("load", b.load, f.load),
        ("mrps", b.mrps, f.mrps),
        ("p50_us", b.p50_us, f.p50_us),
        ("p99_us", b.p99_us, f.p99_us),
        ("p999_us", b.p999_us, f.p999_us),
        ("steal_fraction", b.steal_fraction, f.steal_fraction),
        ("ipis_per_req", b.ipis_per_req, f.ipis_per_req),
        (
            "preemptions_per_req",
            b.preemptions_per_req,
            f.preemptions_per_req,
        ),
        ("avg_cores", b.avg_cores, f.avg_cores),
        ("core_seconds", b.core_seconds, f.core_seconds),
        ("shed_fraction", b.shed_fraction, f.shed_fraction),
        ("wasted_wire_us", b.wasted_wire_us, f.wasted_wire_us),
        ("p99_queue_us", b.p99_queue_us, f.p99_queue_us),
        ("p99_service_us", b.p99_service_us, f.p99_service_us),
        ("p99_steal_us", b.p99_steal_us, f.p99_steal_us),
        ("p99_preempt_us", b.p99_preempt_us, f.p99_preempt_us),
    ];
    for (name, sim, fleet) in scalars {
        assert_eq!(
            sim.to_bits(),
            fleet.to_bits(),
            "{what}: field {name} differs (sim {sim}, fleet {fleet})"
        );
    }
    for (name, sim, fleet) in [
        (
            "shed_share_by_class",
            &b.shed_share_by_class,
            &f.shed_share_by_class,
        ),
        (
            "shed_rate_by_class",
            &b.shed_rate_by_class,
            &f.shed_rate_by_class,
        ),
    ] {
        assert_eq!(sim.len(), fleet.len(), "{what}: {name} length");
        for (i, (s, fl)) in sim.iter().zip(fleet).enumerate() {
            assert_eq!(
                s.to_bits(),
                fl.to_bits(),
                "{what}: {name}[{i}] differs (sim {s}, fleet {fl})"
            );
        }
    }
    assert_eq!(
        b.timeseries.len(),
        f.timeseries.len(),
        "{what}: timeseries count"
    );
}

#[test]
fn single_shard_pass_through_fleet_is_bit_identical_to_sim() {
    // Two twin pairs: a plain world across sub- and over-saturation
    // loads, and a credit-gated world shedding at overload (exercising
    // the per-class/shed reductions as well as the latency ones). The
    // grid descends so no two consecutive loads form a warm-start chain:
    // fleet shards always run cold, so the sim twin must too.
    let sc = Scenario::builder("fleet-diff")
        .service(ServiceDist::exponential_us(10.0))
        .cores(4)
        .conns(64)
        .loads(vec![1.3, 0.8, 0.3])
        .requests(6_000, 1_200)
        .smoke(2_000, 400)
        .fleet(FleetSpec { shards: 1 })
        .case(Case::sim("base", SimHost::Zygos))
        .case(Case::fleet("fleet", SimHost::Zygos).routing(RoutePolicy::PassThrough))
        .case(
            Case::sim("base-credits", SimHost::Zygos)
                .admission(AdmissionMode::ServerEdge)
                .credit_target_us(70.0),
        )
        .case(
            Case::fleet("fleet-credits", SimHost::Zygos)
                .routing(RoutePolicy::PassThrough)
                .admission(AdmissionMode::ServerEdge)
                .credit_target_us(70.0),
        )
        .build()
        .expect("valid");
    let report = run_scenario(&sc, true).expect("runs");
    for (sim_label, fleet_label) in [("base", "fleet"), ("base-credits", "fleet-credits")] {
        let sim = report.series(sim_label).expect("sim series");
        let fleet = report.series(fleet_label).expect("fleet series");
        assert_eq!(sim.points.len(), fleet.points.len());
        assert!(fleet.deterministic);
        for (b, f) in sim.points.iter().zip(&fleet.points) {
            assert_bits(b, f, &format!("{fleet_label} @ load {}", b.load));
        }
    }
}
