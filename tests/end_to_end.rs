//! End-to-end integration tests spanning the runtime, the KV store, Silo
//! and the load tooling — the full stack a downstream user would assemble.

use std::sync::Arc;
use std::time::Duration;

use zygos::core::spinlock::SpinLock;
use zygos::kv::proto::{encode_get, encode_set, KvServer};
use zygos::load::{ArrivalSchedule, SharedRecorder, Slo};
use zygos::net::flow::ConnId;
use zygos::net::packet::RpcMessage;
use zygos::runtime::{app::EchoApp, RpcApp, RuntimeConfig, Server};
use zygos::silo::tpcc::{Tpcc, TpccConfig, TpccRng, TxnType};

struct KvApp(KvServer);

impl RpcApp for KvApp {
    fn handle(&self, _conn: ConnId, req: &RpcMessage) -> RpcMessage {
        self.0.handle(req)
    }
}

#[test]
fn kv_store_served_by_zygos_runtime() {
    let app = Arc::new(KvApp(KvServer::new(32)));
    let (server, client) = Server::start(RuntimeConfig::zygos(4, 16), Arc::clone(&app) as _);

    // Write then read back 500 keys across all connections.
    for i in 0..500u64 {
        let key = format!("key-{i:04}");
        client.send(
            ConnId((i % 16) as u32),
            &encode_set(i, key.as_bytes(), &i.to_le_bytes()),
        );
    }
    for _ in 0..500 {
        let (_, resp) = client
            .recv_timeout(Duration::from_secs(10))
            .expect("set resp");
        assert_eq!(resp.header.opcode, 2);
    }
    for i in 0..500u64 {
        let key = format!("key-{i:04}");
        client.send(
            ConnId((i % 16) as u32),
            &encode_get(1_000 + i, key.as_bytes()),
        );
    }
    for _ in 0..500 {
        let (_, resp) = client
            .recv_timeout(Duration::from_secs(10))
            .expect("get resp");
        assert_eq!(resp.body[0], 1, "hit expected");
        let i = resp.header.req_id - 1_000;
        assert_eq!(&resp.body[1..], &i.to_le_bytes(), "value matches key");
    }
    let (hits, misses) = app.0.store().stats();
    assert_eq!(hits, 500);
    assert_eq!(misses, 0);
    server.shutdown();
}

#[test]
fn silo_tpcc_served_by_zygos_runtime() {
    struct SiloApp {
        tpcc: Tpcc,
        rng: SpinLock<TpccRng>,
    }
    impl RpcApp for SiloApp {
        fn handle(&self, _conn: ConnId, req: &RpcMessage) -> RpcMessage {
            let kind = TxnType::ALL[(req.header.opcode as usize) % 5];
            let mut rng = {
                let mut shared = self.rng.lock();
                TpccRng::new(shared.uniform(0, u64::MAX - 1))
            };
            let out = self.tpcc.run(kind, &mut rng);
            RpcMessage::new(
                req.header.opcode,
                req.header.req_id,
                bytes_of(out.committed, out.user_aborted),
            )
        }
    }
    fn bytes_of(committed: bool, user_aborted: bool) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&[committed as u8, user_aborted as u8])
    }

    let app = Arc::new(SiloApp {
        tpcc: Tpcc::load(TpccConfig::tiny()),
        rng: SpinLock::new(TpccRng::new(3)),
    });
    let (server, client) = Server::start(RuntimeConfig::zygos(4, 8), app);
    let mut mix = TpccRng::new(8);
    let n = 300u64;
    for id in 0..n {
        let opcode = mix.uniform(0, 4) as u16;
        client.send(
            ConnId((id % 8) as u32),
            &RpcMessage::new(opcode, id, bytes::Bytes::new()),
        );
    }
    let mut ok = 0;
    for _ in 0..n {
        let (_, resp) = client.recv_timeout(Duration::from_secs(60)).expect("resp");
        // Every transaction either commits or is the NewOrder 1% rollback.
        assert!(resp.body[0] == 1 || resp.body[1] == 1);
        ok += 1;
    }
    assert_eq!(ok, n);
    server.shutdown();
}

#[test]
fn open_loop_schedule_drives_runtime_within_slo() {
    // A deliberately light load on the echo app must meet a loose SLO —
    // the full client pipeline: schedule → send → recv → recorder → SLO.
    let (server, client) = Server::start(RuntimeConfig::zygos(2, 8), Arc::new(EchoApp));
    let schedule = ArrivalSchedule::generate(0.01, 500, 8, 7); // 10 KRPS.
    let recorder = SharedRecorder::new();
    let t0 = std::time::Instant::now();
    let mut sent = Vec::new();
    for (i, a) in schedule.arrivals().iter().enumerate() {
        let target = Duration::from_nanos(a.at.as_nanos());
        if let Some(wait) = target.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        sent.push(std::time::Instant::now());
        client.send(
            ConnId(a.conn),
            &RpcMessage::new(1, i as u64, bytes::Bytes::new()),
        );
        // Drain whatever has arrived.
        while let Some((_, resp)) = client.recv_timeout(Duration::from_micros(10)) {
            recorder.record_std(sent[resp.header.req_id as usize].elapsed());
        }
    }
    while recorder.count() < schedule.len() as u64 {
        match client.recv_timeout(Duration::from_secs(5)) {
            Some((_, resp)) => recorder.record_std(sent[resp.header.req_id as usize].elapsed()),
            None => break,
        }
    }
    let hist = recorder.snapshot();
    assert_eq!(hist.count(), schedule.len() as u64);
    // Loose sanity SLO: echo at 10 KRPS on idle cores stays under 50ms p99
    // even on a heavily shared 1-CPU host.
    assert!(
        Slo::p99(50_000.0).met_by(&hist),
        "p99 = {}us",
        hist.p99_us()
    );
    server.shutdown();
}

#[test]
fn ordering_preserved_across_all_scheduler_modes() {
    for cfg in [RuntimeConfig::zygos(4, 4), RuntimeConfig::partitioned(4, 4)] {
        let (server, client) = Server::start(cfg.clone(), Arc::new(EchoApp));
        let per_conn = 100u64;
        for seq in 0..per_conn {
            for conn in 0..4u32 {
                client.send(
                    ConnId(conn),
                    &RpcMessage::new(1, (conn as u64) << 32 | seq, bytes::Bytes::new()),
                );
            }
        }
        let mut next = [0u64; 4];
        for _ in 0..(4 * per_conn) {
            let (conn, resp) = client.recv_timeout(Duration::from_secs(20)).expect("resp");
            let seq = resp.header.req_id & 0xFFFF_FFFF;
            assert_eq!(
                seq,
                next[conn.index()],
                "ordering violated in {:?}",
                cfg.scheduler
            );
            next[conn.index()] += 1;
        }
        server.shutdown();
    }
}
