//! Property tests of the fleet plane: conservation of requests across
//! arbitrary shardings, the consistent-hash remap bound on shard loss,
//! and the po2c no-worse-choice guarantee. These pin the *invariants*
//! the scenario-level fleet experiments rely on, over randomized
//! topologies the committed scenarios never enumerate.

use proptest::prelude::*;

use zygos::load::route::{conn_key, remap_slack, Balancer};
use zygos::sim::dist::ServiceDist;
use zygos::sysim::{run_fleet_threads, FleetConfig, RoutePolicy, SysConfig, SystemKind};

/// A small fleet-base world: 2-core shards, tiny windows, fast to run
/// under 64 generated cases.
fn fleet_base(load: f64, conns: u32, seed: u64) -> SysConfig {
    let mut cfg = SysConfig::paper(SystemKind::Zygos, ServiceDist::exponential_us(10.0), load);
    cfg.cores = 2;
    cfg.conns = conns;
    cfg.requests = 800;
    cfg.warmup = 150;
    cfg.seed = seed;
    cfg
}

const POLICIES: [RoutePolicy; 3] = [
    RoutePolicy::ConsistentHash,
    RoutePolicy::LeastLoaded,
    RoutePolicy::PowerOfTwoChoices,
];

proptest! {
    /// Request conservation at drain: everything the fleet's sources
    /// generated is accounted for as a completion, a shed, or a request
    /// still in flight when the run stopped — never negative, for any
    /// shard count, routing policy, degradation, or seed.
    #[test]
    fn fleet_conserves_requests_at_drain(
        shards in 1usize..5,
        policy_ix in 0usize..3,
        load in 0.3f64..1.1,
        seed in 0u64..1_000_000,
        degrade in 0usize..3,
    ) {
        let mut fc = FleetConfig::new(fleet_base(load, 48, seed), shards, POLICIES[policy_ix]);
        if degrade > 0 {
            fc.degraded = vec![(0, 1.0 + degrade as f64)];
        }
        let out = run_fleet_threads(&fc, 1);
        let accounted = out.completed_total() + out.rejected();
        prop_assert!(out.generated() >= accounted,
            "phantom completions: generated {} < completed+shed {}", out.generated(), accounted);
        prop_assert_eq!(out.in_flight(), (out.generated() - accounted) as i64);
        prop_assert!(out.completed() <= out.completed_total(),
            "measured completions exceed total completions");
        prop_assert!(out.completed() > 0, "the fleet completed nothing");
    }

    /// Consistent hashing's defining property under single-shard loss:
    /// only the lost shard's connections move (everyone else's pinning
    /// survives), every moved connection lands on a live shard, and the
    /// move count stays within `ceil(K/N) + slack` of the ideal.
    #[test]
    fn consistent_hash_remap_is_minimal_and_bounded(
        conns in 32usize..512,
        shards in 2usize..10,
        lost_pick in 0usize..10,
        seed in 0u64..1_000_000,
    ) {
        let lost = lost_pick % shards;
        let mut bal = Balancer::new(RoutePolicy::ConsistentHash, shards, seed);
        let before = bal.assign(conns);
        let mut after = before.clone();
        let moved = bal.lose_shard(lost, &mut after);
        let lost_count = before.iter().filter(|&&s| s as usize == lost).count();
        prop_assert_eq!(moved, lost_count, "exactly the lost shard's connections move");
        for (c, (b, a)) in before.iter().zip(&after).enumerate() {
            if *b as usize == lost {
                prop_assert!(*a as usize != lost, "conn {c} still on the dead shard");
            } else {
                prop_assert_eq!(b, a, "conn {} moved although its shard survived", c);
            }
        }
        prop_assert!(
            moved <= conns.div_ceil(shards) + remap_slack(conns, shards),
            "lost shard held {moved} of {conns} connections across {shards} shards \
             (bound {})", conns.div_ceil(shards) + remap_slack(conns, shards)
        );
    }

    /// Power-of-two-choices never routes a connection to a candidate
    /// strictly more backlogged (capacity-weighted) than the other
    /// sampled candidate — the whole point of the second choice.
    #[test]
    fn po2c_never_picks_the_strictly_worse_candidate(
        conns in 16usize..256,
        shards in 2usize..8,
        seed in 0u64..1_000_000,
        degrade in 0usize..3,
    ) {
        let mut bal = Balancer::new(RoutePolicy::PowerOfTwoChoices, shards, seed);
        if degrade > 0 {
            // A degraded shard 0: its backlog is weighted up, so po2c
            // should shy away from it at equal connection counts too.
            bal.set_capacity(0, 1.0 / (1.0 + degrade as f64));
        }
        for c in 0..conns {
            let pre: Vec<f64> = (0..shards).map(|s| bal.backlog(s)).collect();
            let d = bal.route(conn_key(seed, c));
            let (a, b) = d.candidates.expect("po2c always samples two candidates");
            prop_assert!(d.shard == a || d.shard == b, "routed outside its candidates");
            let other = if d.shard == a { b } else { a };
            prop_assert!(
                pre[d.shard] <= pre[other],
                "conn {c} routed to backlog {} over candidate at {}",
                pre[d.shard], pre[other]
            );
        }
    }
}
